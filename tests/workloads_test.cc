/**
 * @file
 * Tests for src/workloads: service-time distribution families, the demand
 * splitter, the five app presets, arrival processes and trace generation.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "util/units.h"
#include "workloads/apps.h"
#include "workloads/arrival.h"
#include "workloads/service_model.h"
#include "workloads/trace_gen.h"

namespace rubik {
namespace {

double
sampleMean(const ServiceTimeDistribution &dist, int n, uint64_t seed)
{
    Rng rng(seed);
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += dist.sample(rng);
    return sum / n;
}

double
sampleCv(const ServiceTimeDistribution &dist, int n, uint64_t seed)
{
    Rng rng(seed);
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = dist.sample(rng);
        sum += x;
        sq += x * x;
    }
    const double m = sum / n;
    const double var = sq / n - m * m;
    return std::sqrt(std::max(0.0, var)) / m;
}

TEST(LognormalServiceTime, MeanAndCvMatchParameters)
{
    const LognormalServiceTime d(2.0 * kMs, 0.5);
    EXPECT_NEAR(sampleMean(d, 200000, 1), 2.0 * kMs, 0.02 * kMs);
    EXPECT_NEAR(sampleCv(d, 200000, 2), 0.5, 0.02);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0 * kMs);
}

TEST(LognormalServiceTime, ZeroCvIsDeterministic)
{
    const LognormalServiceTime d(1.0 * kMs, 0.0);
    Rng rng(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(d.sample(rng), 1.0 * kMs);
}

TEST(BimodalServiceTime, MixtureMean)
{
    const BimodalServiceTime d(1.0 * kMs, 0.1, 5.0 * kMs, 0.1, 0.25);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0 * kMs);
    EXPECT_NEAR(sampleMean(d, 200000, 4), 2.0 * kMs, 0.03 * kMs);
}

TEST(BimodalServiceTime, LongFractionRespected)
{
    const BimodalServiceTime d(1.0 * kMs, 0.05, 10.0 * kMs, 0.05, 0.2);
    Rng rng(5);
    int longs = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        longs += d.sample(rng) > 5.0 * kMs;
    EXPECT_NEAR(static_cast<double>(longs) / n, 0.2, 0.01);
}

TEST(ParetoTailServiceTime, TailCapRespected)
{
    const ParetoTailServiceTime d(1.0 * kMs, 0.3, 0.10, 3.0 * kMs, 2.0,
                                  20.0 * kMs);
    Rng rng(6);
    for (int i = 0; i < 100000; ++i)
        EXPECT_LE(d.sample(rng), 20.0 * kMs);
}

TEST(ParetoTailServiceTime, HeavyTailPresent)
{
    const ParetoTailServiceTime d(1.0 * kMs, 0.3, 0.05, 3.0 * kMs, 2.0,
                                  50.0 * kMs);
    // CV should be clearly above the body's 0.3.
    EXPECT_GT(sampleCv(d, 200000, 7), 0.8);
}

TEST(DeterministicServiceTime, JitterBounds)
{
    const DeterministicServiceTime d(1.0 * kMs, 0.1);
    Rng rng(8);
    for (int i = 0; i < 10000; ++i) {
        const double x = d.sample(rng);
        EXPECT_GE(x, 0.9 * kMs);
        EXPECT_LE(x, 1.1 * kMs);
    }
}

TEST(DemandSplitter, SplitsAtMemoryFraction)
{
    const DemandSplitter splitter(0.4, 0.0, 2.4 * kGHz);
    Rng rng(9);
    const ServiceDemand d = splitter.split(1.0 * kMs, rng);
    EXPECT_NEAR(d.memoryTime, 0.4 * kMs, 1e-12);
    EXPECT_NEAR(d.computeCycles, 0.6 * kMs * 2.4 * kGHz, 1.0);
    // Total service time at nominal reconstructs the input.
    EXPECT_NEAR(d.serviceTime(2.4 * kGHz), 1.0 * kMs, 1e-12);
}

TEST(DemandSplitter, NoiseKeepsDemandsValid)
{
    const DemandSplitter splitter(0.5, 0.3, 2.4 * kGHz);
    Rng rng(10);
    for (int i = 0; i < 10000; ++i) {
        const ServiceDemand d = splitter.split(1.0 * kMs, rng);
        EXPECT_GE(d.memoryTime, 0.0);
        EXPECT_GE(d.computeCycles, 0.0);
        EXPECT_LE(d.memoryTime, 0.95 * kMs * 1.0001);
    }
}

TEST(Apps, AllFivePresent)
{
    const auto apps = allApps();
    ASSERT_EQ(apps.size(), 5u);
    EXPECT_EQ(appName(apps[0]), "masstree");
    EXPECT_EQ(appName(apps[4]), "xapian");
}

TEST(Apps, PaperRequestCountsMatchTable3)
{
    EXPECT_EQ(makeApp(AppId::Xapian).paperRequests, 6000);
    EXPECT_EQ(makeApp(AppId::Masstree).paperRequests, 9000);
    EXPECT_EQ(makeApp(AppId::Moses).paperRequests, 900);
    EXPECT_EQ(makeApp(AppId::Shore).paperRequests, 7500);
    EXPECT_EQ(makeApp(AppId::Specjbb).paperRequests, 37500);
}

TEST(Apps, ServiceTimeScalesOrdered)
{
    // moses has by far the longest requests; specjbb the shortest.
    const double nominal = 2.4 * kGHz;
    const double m = makeApp(AppId::Moses).meanServiceTime(nominal, nominal);
    const double s =
        makeApp(AppId::Specjbb).meanServiceTime(nominal, nominal);
    const double k =
        makeApp(AppId::Masstree).meanServiceTime(nominal, nominal);
    EXPECT_GT(m, 10.0 * k);
    EXPECT_LT(s, k);
}

TEST(Apps, FrequencyScalingRespectsMemoryFraction)
{
    // Halving frequency should less-than-double service time for apps
    // with a memory-bound component.
    const double nominal = 2.4 * kGHz;
    const AppProfile app = makeApp(AppId::Masstree);
    const double t_full = app.meanServiceTime(nominal, nominal);
    const double t_half = app.meanServiceTime(nominal / 2.0, nominal);
    EXPECT_GT(t_half, t_full);
    EXPECT_LT(t_half, 2.0 * t_full);
    // Specifically: t(f/2) = 2*compute + mem = (2 - memFrac) * t(f).
    EXPECT_NEAR(t_half / t_full, 2.0 - app.memFraction, 1e-9);
}

TEST(Apps, MaxQpsIsInverseMeanService)
{
    const double nominal = 2.4 * kGHz;
    const AppProfile app = makeApp(AppId::Shore);
    EXPECT_NEAR(app.maxQps(nominal, nominal) *
                    app.meanServiceTime(nominal, nominal),
                1.0, 1e-9);
}

TEST(ArrivalProcess, ConstantRateMeanInterarrival)
{
    const ArrivalProcess p(1000.0);
    Rng rng(11);
    double t = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        t = p.nextArrival(t, rng);
    EXPECT_NEAR(t / n, 1.0 / 1000.0, 0.02 / 1000.0);
}

TEST(ArrivalProcess, RateAtStepBoundaries)
{
    const ArrivalProcess p({{0.0, 100.0}, {1.0, 200.0}, {2.0, 50.0}});
    EXPECT_DOUBLE_EQ(p.rateAt(0.5), 100.0);
    EXPECT_DOUBLE_EQ(p.rateAt(1.0), 200.0);
    EXPECT_DOUBLE_EQ(p.rateAt(1.99), 200.0);
    EXPECT_DOUBLE_EQ(p.rateAt(5.0), 50.0);
}

TEST(ArrivalProcess, SteppedRatesProduceSteppedDensity)
{
    const ArrivalProcess p({{0.0, 100.0}, {1.0, 400.0}});
    Rng rng(12);
    int before = 0, after = 0;
    double t = 0.0;
    while (t < 2.0) {
        t = p.nextArrival(t, rng);
        if (t < 1.0)
            ++before;
        else if (t < 2.0)
            ++after;
    }
    EXPECT_NEAR(before, 100, 40);
    EXPECT_NEAR(after, 400, 80);
}

TEST(TraceGen, DeterministicInSeed)
{
    const AppProfile app = makeApp(AppId::Xapian);
    const Trace a = generateLoadTrace(app, 0.4, 500, 2.4 * kGHz, 99);
    const Trace b = generateLoadTrace(app, 0.4, 500, 2.4 * kGHz, 99);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].arrivalTime, b[i].arrivalTime);
        EXPECT_DOUBLE_EQ(a[i].computeCycles, b[i].computeCycles);
        EXPECT_DOUBLE_EQ(a[i].memoryTime, b[i].memoryTime);
    }
}

TEST(TraceGen, DifferentSeedsDiffer)
{
    const AppProfile app = makeApp(AppId::Xapian);
    const Trace a = generateLoadTrace(app, 0.4, 100, 2.4 * kGHz, 1);
    const Trace b = generateLoadTrace(app, 0.4, 100, 2.4 * kGHz, 2);
    int same = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        same += a[i].computeCycles == b[i].computeCycles;
    EXPECT_LT(same, 5);
}

TEST(TraceGen, LoadSetsArrivalRate)
{
    const AppProfile app = makeApp(AppId::Masstree);
    const double nominal = 2.4 * kGHz;
    const Trace t = generateLoadTrace(app, 0.5, 20000, nominal, 3);
    const double rate =
        static_cast<double>(t.size() - 1) / traceDuration(t);
    const double expected = 0.5 * app.maxQps(nominal, nominal);
    EXPECT_NEAR(rate, expected, expected * 0.03);
}

TEST(TraceGen, MeanDemandMatchesApp)
{
    const AppProfile app = makeApp(AppId::Moses);
    const double nominal = 2.4 * kGHz;
    const Trace t = generateLoadTrace(app, 0.3, 20000, nominal, 4);
    EXPECT_NEAR(traceMeanServiceTime(t, nominal),
                app.meanServiceTime(nominal, nominal),
                app.meanServiceTime(nominal, nominal) * 0.03);
}

TEST(TraceGen, SteppedTraceCoversLoadSchedule)
{
    const AppProfile app = makeApp(AppId::Masstree);
    const Trace t = generateSteppedTrace(
        app, {{0.0, 0.25}, {1.0, 0.75}}, 2.0, 2.4 * kGHz, 5);
    ASSERT_FALSE(t.empty());
    EXPECT_LE(t.back().arrivalTime, 2.0);
    // Roughly 3x the arrivals in the second half.
    int first = 0, second = 0;
    for (const auto &r : t)
        (r.arrivalTime < 1.0 ? first : second)++;
    EXPECT_GT(second, 2 * first);
}

TEST(TraceGen, ArrivalsStrictlyIncreasing)
{
    const AppProfile app = makeApp(AppId::Specjbb);
    const Trace t = generateLoadTrace(app, 0.6, 5000, 2.4 * kGHz, 6);
    for (std::size_t i = 1; i < t.size(); ++i)
        EXPECT_GT(t[i].arrivalTime, t[i - 1].arrivalTime);
}

} // namespace
} // namespace rubik
