/**
 * @file
 * Property tests for the external-trace importer
 * (workloads/trace_import.h): every class of malformed input is
 * rejected with the offending line number in the error message, and a
 * valid import round-trips through the checksummed .rtrace format
 * byte-identically. The CLI entry (`rubik_cli trace import`) is smoke-
 * tested through RUBIK_CLI when the binary is available.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <sys/wait.h>

#include "sim/trace.h"
#include "workloads/trace_import.h"

namespace fs = std::filesystem;

namespace rubik {
namespace {

const char kHeader[] = "arrival_s,compute_cycles,memory_time_s\n";

/// Expect parseTraceCsv to throw with ":<line>:" in the message.
void
expectRejectedAtLine(const std::string &text, int line,
                     const std::string &label)
{
    try {
        parseTraceCsv(text, "test");
        FAIL() << label << ": accepted invalid input";
    } catch (const std::runtime_error &e) {
        const std::string needle =
            ":" + std::to_string(line) + ":";
        EXPECT_NE(std::string(e.what()).find(needle),
                  std::string::npos)
            << label << ": error lacks line " << line << ": "
            << e.what();
    }
}

TEST(TraceImport, AcceptsMinimalValidCsv)
{
    const Trace t = parseTraceCsv(
        std::string(kHeader) +
            "0.001,240000,0.0001\n0.002,360000,0.00015\n",
        "test");
    ASSERT_EQ(t.size(), 2u);
    EXPECT_DOUBLE_EQ(t[0].arrivalTime, 0.001);
    EXPECT_DOUBLE_EQ(t[1].computeCycles, 360000.0);
    EXPECT_EQ(t[0].classHint, -1); // No class column: unclassified.
}

TEST(TraceImport, AcceptsClassColumnAndEqualTimestamps)
{
    const Trace t = parseTraceCsv(
        "arrival_s,compute_cycles,memory_time_s,class\n"
        "0.001,240000,0.0001,0\n"
        "0.001,360000,0.0002,1\n", // Ties are legal (batch arrival).
        "test");
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t[0].classHint, 0);
    EXPECT_EQ(t[1].classHint, 1);
}

TEST(TraceImport, RejectsEveryMalformationWithLineNumber)
{
    const std::string h = kHeader;
    // Header violations land on line 1.
    expectRejectedAtLine("", 1, "empty file");
    expectRejectedAtLine("0.001,240000,0.0001\n", 1,
                         "missing header");
    expectRejectedAtLine("arrival_s,compute_cycles\n", 1,
                         "too few header columns");
    expectRejectedAtLine("time,cycles,mem\n0.1,2,0.1\n", 1,
                         "first column not arrival");

    // Row violations name the offending row.
    expectRejectedAtLine(h + "0.001,240000,0.0001\nnot,a,row\n", 3,
                         "unparsable fields");
    expectRejectedAtLine(h + "0.001,240000\n", 2, "missing field");
    expectRejectedAtLine(h + "0.001,240000,0.0001,7\n", 2,
                         "extra field vs header");
    expectRejectedAtLine(h + "0.001,240000,0.0001\n\n", 3,
                         "blank line");
    expectRejectedAtLine(h + "-0.001,240000,0.0001\n", 2,
                         "negative arrival");
    expectRejectedAtLine(h + "0.002,240000,0.0001\n"
                             "0.001,240000,0.0001\n",
                         3, "non-monotonic timestamps");
    expectRejectedAtLine(h + "0.001,nan,0.0001\n", 2, "NaN cycles");
    expectRejectedAtLine(h + "0.001,240000,inf\n", 2,
                         "infinite memory time");
    expectRejectedAtLine(h + "0.001,-240000,0.0001\n", 2,
                         "negative service demand");
    expectRejectedAtLine(h + "0.001,240000,-0.0001\n", 2,
                         "negative memory time");
    expectRejectedAtLine(
        "arrival_s,compute_cycles,memory_time_s,class\n"
        "0.001,240000,0.0001,x\n",
        2, "unparsable class hint");

    // A dump cut off mid-write fails on its final line.
    expectRejectedAtLine(h + "0.001,240000,0.0001\n0.002,360000", 3,
                         "truncated file");
    expectRejectedAtLine(h.substr(0, h.size() - 1), 1,
                         "header-only truncation");
}

TEST(TraceImport, RejectsHeaderOnlyFile)
{
    expectRejectedAtLine(kHeader, 1, "no records");
}

struct ScratchDir
{
    ScratchDir()
    {
        char tmpl[] = "/tmp/rubik_trace_import_XXXXXX";
        if (mkdtemp(tmpl))
            path = tmpl;
    }
    ~ScratchDir()
    {
        if (!path.empty()) {
            std::error_code ec;
            fs::remove_all(path, ec);
        }
    }
    std::string path;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

TEST(TraceImport, RoundTripsByteIdentically)
{
    // Awkward doubles (subnormal-ish exponents, full precision) and
    // class hints: %.17g printing round-trips IEEE doubles exactly,
    // and the binary format stores them bit-exact, so import ->
    // .rtrace -> load -> serialize must be a fixed point.
    Trace original;
    original.push_back({0.0012345678901234567, 240000.5, 1.25e-4, 0});
    original.push_back({0.0012345678901234567, 360007.0, 0.0, 1});
    original.push_back({0.0099999999999999998, 1.0, 3.0e-300, -1});

    ScratchDir dir;
    const std::string csv = dir.path + "/ext.csv";
    std::FILE *f = std::fopen(csv.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "arrival_s,compute_cycles,memory_time_s,class\n");
    for (const TraceRecord &r : original) {
        std::fprintf(f, "%.17g,%.17g,%.17g,%d\n", r.arrivalTime,
                     r.computeCycles, r.memoryTime, r.classHint);
    }
    std::fclose(f);

    const std::string rtrace = dir.path + "/ext.rtrace";
    const TraceImportResult res = convertTraceCsv(csv, rtrace);
    EXPECT_EQ(res.records, original.size());

    const Trace loaded = loadTraceBinary(rtrace);
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded[i].arrivalTime, original[i].arrivalTime);
        EXPECT_EQ(loaded[i].computeCycles, original[i].computeCycles);
        EXPECT_EQ(loaded[i].memoryTime, original[i].memoryTime);
        EXPECT_EQ(loaded[i].classHint, original[i].classHint);
    }

    // Re-importing the same CSV writes identical bytes (the checksummed
    // encoding is a pure function of the parsed trace and source name).
    const std::string again = dir.path + "/ext2.rtrace";
    std::error_code ec;
    fs::copy_file(csv, dir.path + "/ext2.csv", ec);
    ASSERT_FALSE(ec);
    convertTraceCsv(csv, again);
    EXPECT_EQ(readFile(rtrace), readFile(again));

    // And the header checksum the importer reported is the stored one.
    EXPECT_EQ(readTraceBinaryHeader(rtrace).checksum, res.checksum);
}

TEST(TraceImport, FailedConversionWritesNothing)
{
    ScratchDir dir;
    const std::string csv = dir.path + "/bad.csv";
    std::ofstream(csv) << kHeader << "0.002,1,0.1\n0.001,1,0.1\n";
    const std::string out = dir.path + "/bad.rtrace";
    EXPECT_THROW(convertTraceCsv(csv, out), std::runtime_error);
    EXPECT_FALSE(fs::exists(out));
}

// --- rubik_cli trace import smoke ------------------------------------

int
runCommand(const std::string &cmd)
{
    const int rc = std::system(cmd.c_str());
    return rc == -1 ? -1 : WEXITSTATUS(rc);
}

TEST(TraceImportCli, ImportAndRejectionExitCodes)
{
    const char *cli = std::getenv("RUBIK_CLI");
    if (!cli || !fs::exists(cli))
        GTEST_SKIP() << "RUBIK_CLI not set or missing";

    ScratchDir dir;
    const std::string good = dir.path + "/good.csv";
    std::ofstream(good) << kHeader << "0.001,240000,0.0001\n"
                        << "0.002,360000,0.00015\n";
    const std::string out = dir.path + "/good.rtrace";
    EXPECT_EQ(runCommand("'" + std::string(cli) +
                         "' trace import --in '" + good + "' --out '" +
                         out + "' > /dev/null"),
              0);
    EXPECT_EQ(loadTraceBinary(out).size(), 2u);

    // A malformed dump exits nonzero and names the offending line on
    // stderr; nothing is written.
    const std::string bad = dir.path + "/bad.csv";
    std::ofstream(bad) << kHeader << "0.001,nan,0.0001\n";
    const std::string bad_out = dir.path + "/bad.rtrace";
    const std::string err = dir.path + "/err.txt";
    EXPECT_NE(runCommand("'" + std::string(cli) +
                         "' trace import --in '" + bad + "' --out '" +
                         bad_out + "' 2> '" + err + "'"),
              0);
    EXPECT_FALSE(fs::exists(bad_out));
    EXPECT_NE(readFile(err).find(":2:"), std::string::npos)
        << "stderr lacks the offending line number";
}

} // namespace
} // namespace rubik
