/**
 * @file
 * Tests for rubik::ExperimentRunner: parallel results must be
 * bit-identical to serial execution under fixed seeds, exceptions must
 * propagate in submission order, and >1 worker must actually overlap
 * work.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "core/rubik_controller.h"
#include "runner/experiment_runner.h"
#include "runner/options_parser.h"
#include "sim/simulation.h"
#include "util/rng.h"
#include "workloads/trace_gen.h"

namespace rubik {
namespace {

// ------------------------------------------------------------------
// OptionsParser registration hygiene: a flag registered twice used to
// shadow silently (first registration won), hiding real CLI wiring
// bugs — e.g. a subcommand adding --bound-ms on top of addRunFlags.

TEST(OptionsParser, DuplicateFlagRegistrationThrows)
{
    char prog[] = "prog";
    char *argv[] = {prog};
    OptionsParser parser(1, argv);
    parser.flag("--verbose", [] {});
    EXPECT_THROW(parser.flag("--verbose", [] {}), std::logic_error);
    // A valued flag with the same name collides too: the token match
    // is name-based, not kind-based.
    EXPECT_THROW(parser.value("--verbose", [](const char *) {}),
                 std::logic_error);
}

TEST(OptionsParser, DuplicateValueRegistrationThrows)
{
    char prog[] = "prog";
    char *argv[] = {prog};
    OptionsParser parser(1, argv);
    parser.value("--seed", [](const char *) {});
    EXPECT_THROW(parser.value("--seed", [](const char *) {}),
                 std::logic_error);
    EXPECT_THROW(parser.flag("--seed", [] {}), std::logic_error);
    // The error names the flag, so the broken registration is
    // identifiable from the what() string alone.
    try {
        parser.value("--seed", [](const char *) {});
        FAIL() << "expected std::logic_error";
    } catch (const std::logic_error &e) {
        EXPECT_NE(std::string(e.what()).find("--seed"),
                  std::string::npos);
    }
}

TEST(OptionsParser, DistinctFlagsStillRegister)
{
    char prog[] = "prog";
    char a[] = "--csv";
    char *argv[] = {prog, a};
    bool csv = false;
    OptionsParser parser(2, argv);
    parser.flag("--csv", [&] { csv = true; });
    parser.value("--seed", [](const char *) {});
    parser.run();
    EXPECT_TRUE(csv);
}

TEST(ExperimentRunner, RunsAllJobsInSubmissionOrder)
{
    ExperimentRunner runner(4);
    std::vector<std::function<int()>> jobs;
    for (int i = 0; i < 100; ++i)
        jobs.push_back([i] { return i * i; });
    const std::vector<int> results = runner.runBatch(std::move(jobs));
    ASSERT_EQ(results.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(results[i], i * i);
}

TEST(ExperimentRunner, DefaultWorkerCountPositive)
{
    EXPECT_GE(ExperimentRunner::defaultWorkerCount(), 1);
    ExperimentRunner runner;
    EXPECT_GE(runner.numWorkers(), 1);
}

// Parallel simulation results must equal serial results bit for bit:
// every job owns its trace and seed, so scheduling cannot leak in.
TEST(ExperimentRunner, ParallelSimulationsMatchSerial)
{
    const DvfsModel dvfs = DvfsModel::haswell(4e-6);
    const PowerModel power(dvfs);
    const AppProfile app = makeApp(AppId::Masstree);
    const double nominal = dvfs.nominalFrequency();
    const std::vector<double> loads = {0.2, 0.3, 0.4, 0.5, 0.6};
    const uint64_t base_seed = 42;

    auto run_one = [&](std::size_t i) {
        const Trace t = generateLoadTrace(app, loads[i], 800, nominal,
                                          base_seed + i);
        RubikConfig cfg;
        cfg.latencyBound = 1e-3;
        RubikController policy(dvfs, cfg);
        return simulate(t, policy, dvfs, power);
    };

    std::vector<SimResult> serial;
    for (std::size_t i = 0; i < loads.size(); ++i)
        serial.push_back(run_one(i));

    ExperimentRunner runner(4);
    std::vector<std::function<SimResult()>> jobs;
    for (std::size_t i = 0; i < loads.size(); ++i)
        jobs.push_back([&, i] { return run_one(i); });
    const std::vector<SimResult> parallel =
        runner.runBatch(std::move(jobs));

    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(parallel[i].tailLatency(), serial[i].tailLatency());
        EXPECT_EQ(parallel[i].coreActiveEnergy(),
                  serial[i].coreActiveEnergy());
        ASSERT_EQ(parallel[i].completed.size(),
                  serial[i].completed.size());
        for (std::size_t j = 0; j < serial[i].completed.size(); ++j) {
            EXPECT_EQ(parallel[i].completed[j].completionTime,
                      serial[i].completed[j].completionTime);
        }
    }
}

// Repeated parallel batches are self-consistent (no run-to-run drift).
TEST(ExperimentRunner, ParallelRunsAreReproducible)
{
    auto batch = [] {
        ExperimentRunner runner(3);
        std::vector<std::function<uint64_t()>> jobs;
        for (int i = 0; i < 16; ++i) {
            jobs.push_back([i] {
                Rng rng(1000 + static_cast<uint64_t>(i));
                uint64_t acc = 0;
                for (int k = 0; k < 1000; ++k)
                    acc ^= rng.next();
                return acc;
            });
        }
        return runner.runBatch(std::move(jobs));
    };
    EXPECT_EQ(batch(), batch());
}

TEST(ExperimentRunner, PropagatesLowestIndexException)
{
    ExperimentRunner runner(4);
    std::atomic<int> completed{0};
    std::vector<std::function<int()>> jobs;
    for (int i = 0; i < 20; ++i) {
        jobs.push_back([i, &completed]() -> int {
            if (i == 7)
                throw std::runtime_error("job 7 failed");
            if (i == 13)
                throw std::logic_error("job 13 failed");
            ++completed;
            return i;
        });
    }
    try {
        runner.runBatch(std::move(jobs));
        FAIL() << "expected runBatch to rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "job 7 failed"); // index 7 < 13.
    }
    // All non-throwing jobs still ran to completion.
    EXPECT_EQ(completed.load(), 18);
}

TEST(ExperimentRunner, VoidBatchPropagatesExceptions)
{
    ExperimentRunner runner(2);
    std::vector<std::function<void()>> jobs;
    jobs.push_back([] {});
    jobs.push_back([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(runner.runBatch(std::move(jobs)), std::runtime_error);
}

TEST(ExperimentRunner, ParallelForCoversAllIndices)
{
    ExperimentRunner runner(4);
    std::vector<int> hits(257, 0);
    runner.parallelFor(hits.size(),
                       [&](std::size_t i) { hits[i] = 1; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i], 1) << "index " << i;
}

// With >1 worker, two blocking jobs must overlap: each waits for the
// other to start, which can only happen if they run concurrently.
TEST(ExperimentRunner, WorkersRunConcurrently)
{
    ExperimentRunner runner(2);
    std::mutex m;
    std::condition_variable cv;
    int started = 0;
    auto job = [&] {
        std::unique_lock<std::mutex> lock(m);
        ++started;
        cv.notify_all();
        // Deadlocks (until timeout) if jobs were serialized.
        return cv.wait_for(lock, std::chrono::seconds(10),
                           [&] { return started == 2; });
    };
    std::vector<std::function<bool()>> jobs = {job, job};
    const auto ok = runner.runBatch(std::move(jobs));
    EXPECT_TRUE(ok[0]);
    EXPECT_TRUE(ok[1]);
}

// Wall-clock sanity: 4 workers finish 8 sleep-bound jobs materially
// faster than one worker does. Sleeps make this robust on loaded CI.
TEST(ExperimentRunner, MultiWorkerSpeedup)
{
    auto time_batch = [](int workers) {
        ExperimentRunner runner(workers);
        std::vector<std::function<void()>> jobs;
        for (int i = 0; i < 8; ++i) {
            jobs.push_back([] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(50));
            });
        }
        const auto start = std::chrono::steady_clock::now();
        runner.runBatch(std::move(jobs));
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };
    const double serial = time_batch(1);   // ~400 ms.
    const double parallel = time_batch(4); // ~100 ms.
    EXPECT_LT(parallel, serial * 0.75);
}

} // namespace
} // namespace rubik
