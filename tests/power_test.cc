/**
 * @file
 * Unit tests for src/power: DVFS grid/V-f curve and the analytical power
 * model (monotonicity, stall behavior, component accounting, calibration
 * sanity against Table 2's 65 W TDP class of machine).
 */

#include <gtest/gtest.h>

#include "power/dvfs_model.h"
#include "power/power_model.h"
#include "util/units.h"

namespace rubik {
namespace {

TEST(DvfsModel, HaswellGridMatchesTable2)
{
    const DvfsModel dvfs = DvfsModel::haswell();
    EXPECT_DOUBLE_EQ(dvfs.minFrequency(), 0.8 * kGHz);
    EXPECT_DOUBLE_EQ(dvfs.maxFrequency(), 3.4 * kGHz);
    EXPECT_DOUBLE_EQ(dvfs.nominalFrequency(), 2.4 * kGHz);
    EXPECT_EQ(dvfs.numFrequencies(), 14u); // 0.8..3.4 in 0.2 steps
    EXPECT_DOUBLE_EQ(dvfs.transitionLatency(), 4e-6);
}

TEST(DvfsModel, QuantizeUp)
{
    const DvfsModel dvfs = DvfsModel::haswell();
    EXPECT_DOUBLE_EQ(dvfs.quantizeUp(0.0), 0.8 * kGHz);
    EXPECT_DOUBLE_EQ(dvfs.quantizeUp(0.9 * kGHz), 1.0 * kGHz);
    EXPECT_DOUBLE_EQ(dvfs.quantizeUp(1.0 * kGHz), 1.0 * kGHz);
    EXPECT_DOUBLE_EQ(dvfs.quantizeUp(99.0 * kGHz), 3.4 * kGHz);
}

TEST(DvfsModel, QuantizeDown)
{
    const DvfsModel dvfs = DvfsModel::haswell();
    EXPECT_DOUBLE_EQ(dvfs.quantizeDown(0.9 * kGHz), 0.8 * kGHz);
    EXPECT_DOUBLE_EQ(dvfs.quantizeDown(3.3 * kGHz), 3.2 * kGHz);
    EXPECT_DOUBLE_EQ(dvfs.quantizeDown(0.1 * kGHz), 0.8 * kGHz);
    EXPECT_DOUBLE_EQ(dvfs.quantizeDown(3.4 * kGHz), 3.4 * kGHz);
}

TEST(DvfsModel, IndexOfRoundsToNearest)
{
    const DvfsModel dvfs = DvfsModel::haswell();
    EXPECT_EQ(dvfs.indexOf(0.8 * kGHz), 0u);
    EXPECT_EQ(dvfs.indexOf(2.4 * kGHz), 8u);
    EXPECT_EQ(dvfs.indexOf(2.45 * kGHz), 8u);
    EXPECT_EQ(dvfs.indexOf(3.4 * kGHz), 13u);
}

TEST(DvfsModel, VoltageMonotonicInFrequency)
{
    const DvfsModel dvfs = DvfsModel::haswell();
    double prev = 0.0;
    for (double f : dvfs.frequencies()) {
        const double v = dvfs.voltage(f);
        EXPECT_GT(v, prev);
        prev = v;
    }
    EXPECT_NEAR(dvfs.voltage(0.8 * kGHz), 0.55, 1e-12);
    EXPECT_NEAR(dvfs.voltage(3.4 * kGHz), 1.15, 1e-12);
}

TEST(DvfsModel, TransitionLatencyConfigurable)
{
    DvfsModel dvfs = DvfsModel::haswell(130e-6); // Sec. 5.5 real system
    EXPECT_DOUBLE_EQ(dvfs.transitionLatency(), 130e-6);
    dvfs.setTransitionLatency(0.5e-6);
    EXPECT_DOUBLE_EQ(dvfs.transitionLatency(), 0.5e-6);
}

class PowerModelTest : public ::testing::Test
{
  protected:
    DvfsModel dvfs = DvfsModel::haswell();
    PowerModel pm{dvfs};
};

TEST_F(PowerModelTest, ActivePowerMonotonicInFrequency)
{
    double prev = 0.0;
    for (double f : dvfs.frequencies()) {
        const double p = pm.coreActivePower(f);
        EXPECT_GT(p, prev);
        prev = p;
    }
}

TEST_F(PowerModelTest, SuperlinearDynamicScaling)
{
    // P ~ V^2 f: doubling frequency more than doubles dynamic power.
    const double p1 = pm.coreDynamicPower(1.2 * kGHz);
    const double p2 = pm.coreDynamicPower(2.4 * kGHz);
    EXPECT_GT(p2, 2.0 * p1);
}

TEST_F(PowerModelTest, StallReducesDynamicPower)
{
    const double busy = pm.coreActivePower(2.4 * kGHz, 0.0);
    const double stalled = pm.coreActivePower(2.4 * kGHz, 1.0);
    EXPECT_LT(stalled, busy);
    EXPECT_GT(stalled, pm.coreStaticPower(2.4 * kGHz)); // clocks still on
}

TEST_F(PowerModelTest, SleepStatesOrdered)
{
    const double active = pm.corePower(CoreState::Active, 2.4 * kGHz);
    const double idle = pm.corePower(CoreState::IdleC1, 2.4 * kGHz);
    const double sleep = pm.corePower(CoreState::SleepC3, 2.4 * kGHz);
    EXPECT_GT(active, idle);
    EXPECT_GT(idle, sleep);
    EXPECT_GT(sleep, 0.0);
}

TEST_F(PowerModelTest, NominalCorePowerInHaswellRange)
{
    // A Haswell-class core at nominal should draw mid-single-digit watts.
    const double p = pm.coreActivePower(2.4 * kGHz);
    EXPECT_GT(p, 4.0);
    EXPECT_LT(p, 10.0);
}

TEST_F(PowerModelTest, DynamicRangeSupportsLargeSavings)
{
    // The paper reports up to 66% core power savings; the model must have
    // the dynamic range for that.
    const double high = pm.coreActivePower(2.4 * kGHz);
    const double low = pm.coreActivePower(0.8 * kGHz);
    EXPECT_LT(low / high, 0.34);
}

TEST_F(PowerModelTest, UncoreScalesWithActiveCores)
{
    EXPECT_GT(pm.uncorePower(6), pm.uncorePower(0));
    EXPECT_NEAR(pm.uncorePower(6) - pm.uncorePower(0),
                6.0 * pm.params().uncorePerActiveCore, 1e-12);
}

TEST_F(PowerModelTest, DramPowerBoundedByUtilization)
{
    EXPECT_DOUBLE_EQ(pm.dramPower(0.0), pm.params().dramStatic);
    EXPECT_DOUBLE_EQ(pm.dramPower(1.0),
                     pm.params().dramStatic + pm.params().dramPeak);
    EXPECT_DOUBLE_EQ(pm.dramPower(2.0), pm.dramPower(1.0)); // clamped
    EXPECT_DOUBLE_EQ(pm.dramPower(-1.0), pm.dramPower(0.0));
}

TEST_F(PowerModelTest, PackagePowerAtNominalWithinTdp)
{
    // 6 cores at nominal + uncore should fit in the 65 W TDP.
    std::vector<double> freqs(6, 2.4 * kGHz);
    std::vector<double> stalls(6, 0.3);
    EXPECT_LT(pm.packagePower(freqs, stalls), pm.tdp());
}

TEST_F(PowerModelTest, PackagePowerAtMaxExceedsTdp)
{
    // All-core max frequency must exceed TDP, or HW-T would be trivial.
    std::vector<double> freqs(6, 3.4 * kGHz);
    std::vector<double> stalls(6, 0.0);
    EXPECT_GT(pm.packagePower(freqs, stalls), pm.tdp());
}

TEST_F(PowerModelTest, EnergyBreakdownAccumulates)
{
    EnergyBreakdown a, b;
    a.coreActive = 1.0;
    a.uncore = 2.0;
    b.coreActive = 3.0;
    b.dram = 4.0;
    a += b;
    EXPECT_DOUBLE_EQ(a.coreActive, 4.0);
    EXPECT_DOUBLE_EQ(a.uncore, 2.0);
    EXPECT_DOUBLE_EQ(a.dram, 4.0);
    EXPECT_DOUBLE_EQ(a.total(), 10.0);
    EXPECT_DOUBLE_EQ(a.coreTotal(), 4.0);
}

TEST_F(PowerModelTest, IdleServerPowerIsSignificant)
{
    // The motivation for RubikColoc (Sec. 6): even an idle server burns a
    // large fraction of its loaded power. Idle: 6 cores in C3 + uncore +
    // DRAM + other.
    const auto &p = pm.params();
    const double idle = 6.0 * p.c3Power + pm.uncorePower(0) +
                        pm.dramPower(0.0) + pm.otherPower();
    const double loaded = 6.0 * pm.coreActivePower(2.4 * kGHz, 0.3) +
                          pm.uncorePower(6) + pm.dramPower(0.5) +
                          pm.otherPower();
    EXPECT_GT(idle / loaded, 0.35);
    EXPECT_LT(idle / loaded, 0.75);
}

} // namespace
} // namespace rubik
