/**
 * @file
 * Guards the per-event decision path against silent perf regressions:
 * RubikController::selectFrequency must perform no heap allocation in
 * steady state (the paper's "updates take negligible time", Sec. 4.2 —
 * a handful of table lookups and divides). A counting global operator
 * new catches any allocation sneaking into the hot path.
 */

#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "core/rubik_controller.h"
#include "power/dvfs_model.h"
#include "power/power_model.h"
#include "sim/core_engine.h"
#include "util/rng.h"
#include "util/units.h"

#if defined(__SANITIZE_ADDRESS__)
#define RUBIK_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define RUBIK_ASAN 1
#endif
#endif
#ifndef RUBIK_ASAN
#define RUBIK_ASAN 0
#endif

#if !RUBIK_ASAN
// Counting allocator: every global allocation bumps the counter. Not
// compiled under ASan, whose interceptors own operator new.
namespace {
unsigned long long g_allocations = 0;
}

void *
operator new(std::size_t size)
{
    ++g_allocations;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    ++g_allocations;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
#endif // !RUBIK_ASAN

namespace rubik {
namespace {

TEST(AllocGuard, SelectFrequencyAllocatesNothingInSteadyState)
{
#if RUBIK_ASAN
    GTEST_SKIP() << "allocation counting disabled under ASan";
#else
    const DvfsModel dvfs = DvfsModel::haswell();
    const PowerModel pm(dvfs);
    RubikConfig cfg;
    cfg.latencyBound = 1.0 * kMs;
    cfg.warmupSamples = 16;
    RubikController rubik(dvfs, cfg);

    CoreEngine core(dvfs, pm);
    Rng rng(3);
    for (int i = 0; i < 64; ++i) {
        CompletedRequest done;
        done.computeCycles = rng.lognormal(13.0, 0.3);
        done.memoryTime = rng.lognormal(-9.0, 0.3);
        done.completionTime = i * 1e-4;
        rubik.onCompletion(done, core.view());
    }
    rubik.periodicUpdate(core.view()); // builds the table
    ASSERT_TRUE(rubik.warm());

    // Deep queue: positions both inside the exact table and out in the
    // Gaussian extension.
    for (int i = 0; i < 40; ++i) {
        Request r;
        r.arrivalTime = core.now();
        r.computeCycles = 5e5;
        r.memoryTime = 1e-4;
        core.enqueue(r);
    }
    ASSERT_TRUE(core.busy());

    // Warm any lazy one-time state, then count.
    (void)rubik.selectFrequency(core.view());

    const unsigned long long before = g_allocations;
    double freq = 0.0;
    for (int i = 0; i < 100; ++i)
        freq = rubik.selectFrequency(core.view());
    const unsigned long long after = g_allocations;

    EXPECT_GT(freq, 0.0);
    EXPECT_EQ(after - before, 0ull)
        << "selectFrequency allocated on the decision path";
#endif
}

} // namespace
} // namespace rubik
