/**
 * @file
 * Tests for the live serving stack: ServeEngine invariants (grid
 * decisions, warmup, bounded queue, error replies, stats JSON,
 * decision-log accounting), decision identity between the engine and a
 * hand-driven exact controller fed the same event stream, the
 * LatencyHistogram, and — when RUBIK_CLI points at the built binary —
 * the daemon lifecycle end to end: start, ping, replay producing a
 * decision hash byte-identical to the one-shot CLI's, well-formed
 * --stats, and a SIGTERM shutdown that exits 0 and removes the socket.
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "core/rubik_controller.h"
#include "runner/subproc.h"
#include "serve/daemon.h"
#include "serve/serve_engine.h"
#include "stats/latency_histogram.h"
#include "util/rng.h"
#include "util/units.h"

namespace rubik {
namespace {

// ------------------------------------------------------------------
// LatencyHistogram

TEST(LatencyHistogram, BucketsCountsAndPercentiles)
{
    EXPECT_EQ(LatencyHistogram::bucketOf(0), 0u);
    EXPECT_EQ(LatencyHistogram::bucketOf(1), 0u);
    EXPECT_EQ(LatencyHistogram::bucketOf(2), 1u);
    EXPECT_EQ(LatencyHistogram::bucketOf(3), 2u);
    EXPECT_EQ(LatencyHistogram::bucketOf(4), 2u);
    EXPECT_EQ(LatencyHistogram::bucketOf(5), 3u);
    // Samples at/above 2^63 (clz == 0) clamp into the top bucket
    // instead of indexing one past the array.
    EXPECT_EQ(LatencyHistogram::bucketOf(1ull << 63),
              LatencyHistogram::kBuckets - 1);
    EXPECT_EQ(LatencyHistogram::bucketOf(UINT64_MAX),
              LatencyHistogram::kBuckets - 1);

    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentileNs(0.5), 0.0);
    for (uint64_t ns : {10u, 20u, 30u, 40u, 1000u})
        h.add(ns);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.maxNs(), 1000u);
    EXPECT_DOUBLE_EQ(h.meanNs(), 220.0);
    // Percentiles are monotone and clamped to the observed max.
    double prev = 0.0;
    for (double q : {0.1, 0.5, 0.9, 0.99, 1.0}) {
        const double p = h.percentileNs(q);
        EXPECT_GE(p, prev);
        EXPECT_LE(p, 1000.0);
        prev = p;
    }

    LatencyHistogram other;
    other.add(5000);
    h.merge(other);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.maxNs(), 5000u);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.maxNs(), 0u);
}

// ------------------------------------------------------------------
// ServeEngine

/// One event of a synthetic serving stream.
struct Event
{
    double t = 0.0;
    bool arrival = true;
    double cycles = 0.0; ///< completions: measured compute cycles
    double mem = 0.0;    ///< completions: measured memory time
};

/// Deterministic open-loop stream: Poisson-ish arrivals, FIFO
/// completions a service time later, merged into one time-ordered
/// event list spanning several update periods.
std::vector<Event>
makeStream(int requests, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Event> arrivals(requests), completions(requests);
    double t = 0.0, done = 0.0;
    for (int i = 0; i < requests; ++i) {
        t += rng.uniform(5e-5, 2e-4);
        arrivals[i] = {t, true, 0.0, 0.0};
        // Service mean below the arrival gap mean: the queue drains,
        // ages stay inside the bound, and decisions actually vary
        // (an overloaded stream saturates at max frequency forever).
        const double service = rng.uniform(2e-5, 1e-4);
        done = std::max(done, t) + service;
        completions[i] = {done, false, rng.lognormal(13.0, 0.3),
                          rng.lognormal(-9.0, 0.3)};
    }
    std::vector<Event> events;
    events.reserve(2 * static_cast<std::size_t>(requests));
    std::size_t a = 0, c = 0;
    while (a < arrivals.size() || c < completions.size()) {
        // Completions only fire for already-arrived requests, so on a
        // tie the arrival goes first.
        if (a < arrivals.size() &&
            (c >= completions.size() || arrivals[a].t <= completions[c].t))
            events.push_back(arrivals[a++]);
        else
            events.push_back(completions[c++]);
    }
    return events;
}

ServeConfig
testConfig()
{
    ServeConfig cfg;
    cfg.latencyBound = 1.0 * kMs;
    cfg.updatePeriod = 10.0 * kMs;
    cfg.timeDecisions = false; // determinism over telemetry in tests
    return cfg;
}

TEST(ServeEngine, DecisionsStayOnTheGridAndWarmUp)
{
    const DvfsModel dvfs = DvfsModel::haswell();
    ServeEngine engine(dvfs, testConfig());
    EXPECT_FALSE(engine.warm());

    const std::vector<Event> events = makeStream(400, 9);
    const std::vector<double> &grid = dvfs.frequencies();
    uint64_t okEvents = 0;
    for (const Event &e : events) {
        const ServeDecision d =
            e.arrival ? engine.onArrival(e.t)
                      : engine.onCompletion(e.t, e.cycles, e.mem);
        ASSERT_TRUE(d.ok);
        ++okEvents;
        EXPECT_TRUE(std::find(grid.begin(), grid.end(), d.frequency) !=
                    grid.end())
            << "off-grid decision " << d.frequency;
    }
    EXPECT_TRUE(engine.warm());
    EXPECT_GE(engine.tableRebuilds(), 1u);
    EXPECT_EQ(engine.queueDepth(), 0u);
    // Every accepted event produced exactly one recorded decision.
    EXPECT_EQ(engine.decisionLog().count, okEvents);
    EXPECT_GT(engine.transitions(), 0u);
}

TEST(ServeEngine, CompletionOnEmptyQueueIsAnError)
{
    const DvfsModel dvfs = DvfsModel::haswell();
    ServeEngine engine(dvfs, testConfig());
    const ServeDecision d = engine.onCompletion(1e-3, 1e5, 1e-5);
    EXPECT_FALSE(d.ok);
    ASSERT_NE(d.error, nullptr);
    EXPECT_STREQ(d.error, "completion with empty queue");
    EXPECT_EQ(engine.decisionLog().count, 0u);
}

TEST(ServeEngine, BoundedQueueRejectsOverflow)
{
    const DvfsModel dvfs = DvfsModel::haswell();
    ServeConfig cfg = testConfig();
    cfg.maxQueue = 4;
    ServeEngine engine(dvfs, cfg);
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(engine.onArrival(1e-5 * (i + 1)).ok);
    const ServeDecision d = engine.onArrival(5e-5);
    EXPECT_FALSE(d.ok);
    ASSERT_NE(d.error, nullptr);
    EXPECT_STREQ(d.error, "queue full");
    EXPECT_EQ(engine.queueDepth(), 4u);
    EXPECT_EQ(engine.decisionLog().count, 4u);
    EXPECT_NE(engine.statsJson().find("\"rejected\":1"),
              std::string::npos);
}

TEST(ServeEngine, DecisionTimingLandsInHistogram)
{
    const DvfsModel dvfs = DvfsModel::haswell();
    ServeConfig cfg = testConfig();
    cfg.timeDecisions = true;
    ServeEngine engine(dvfs, cfg);
    for (const Event &e : makeStream(100, 3)) {
        if (e.arrival)
            engine.onArrival(e.t);
        else
            engine.onCompletion(e.t, e.cycles, e.mem);
    }
    EXPECT_EQ(engine.decisionLatency().count(),
              engine.decisionLog().count);
    EXPECT_GT(engine.decisionLatency().maxNs(), 0u);
}

TEST(ServeEngine, StatsJsonIsWellFormed)
{
    const DvfsModel dvfs = DvfsModel::haswell();
    ServeEngine engine(dvfs, testConfig());
    for (const Event &e : makeStream(150, 5)) {
        if (e.arrival)
            engine.onArrival(e.t);
        else
            engine.onCompletion(e.t, e.cycles, e.mem);
    }
    const std::string json = engine.statsJson();
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    int depth = 0;
    for (char ch : json) {
        if (ch == '{')
            ++depth;
        else if (ch == '}')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    for (const char *key :
         {"\"table_version\":", "\"warm\":", "\"internal_target_ms\":",
          "\"queue_depth\":", "\"frequency_ghz\":", "\"decisions\":",
          "\"decision_hash\":", "\"transitions\":", "\"latency_ns\":",
          "\"distilled\":", "\"rejected\":"}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
}

// The engine is a stream-driven wrapper over the exact controller; a
// hand-driven mirror replicating its event ordering (periodic updates
// due before the event, then completion feed, then one decision) must
// see the identical frequency at every step.
TEST(ServeEngine, MatchesHandDrivenExactController)
{
    const DvfsModel dvfs = DvfsModel::haswell();
    const ServeConfig cfg = testConfig();
    ServeEngine engine(dvfs, cfg);

    RubikConfig rc;
    rc.latencyBound = cfg.latencyBound;
    rc.percentile = cfg.percentile;
    rc.updatePeriod = cfg.updatePeriod;
    rc.feedback = cfg.feedback;
    rc.table = cfg.table;
    RubikController mirror(dvfs, rc);
    std::deque<double> queue;
    std::vector<double> lane;
    std::vector<int> hints;
    double now = 0.0, elapsed = 0.0;
    double frequency = dvfs.maxFrequency();

    auto mirrorView = [&]() {
        lane.assign(queue.begin(), queue.end());
        hints.assign(queue.size(), -1);
        CoreView v;
        v.now = now;
        v.frequency = frequency;
        v.elapsedCycles = elapsed;
        v.count = lane.size();
        v.busy = !lane.empty();
        v.arrivals = lane.data();
        v.classHints = hints.data();
        v.dvfs = &dvfs;
        return v;
    };
    auto advanceTo = [&](double t) {
        while (mirror.nextPeriodicUpdate() <= t) {
            const double at = mirror.nextPeriodicUpdate();
            const double save = now;
            now = at;
            mirror.periodicUpdate(mirrorView());
            now = save;
        }
        if (t > now)
            now = t;
    };

    for (const Event &e : makeStream(400, 9)) {
        double got = 0.0, want = 0.0;
        if (e.arrival) {
            got = engine.onArrival(e.t).frequency;
            advanceTo(e.t);
            queue.push_back(e.t);
            elapsed = 0.0;
            want = mirror.selectFrequency(mirrorView());
        } else {
            got = engine.onCompletion(e.t, e.cycles, e.mem).frequency;
            advanceTo(e.t);
            CompletedRequest done;
            done.arrivalTime = queue.front();
            done.completionTime = e.t;
            done.computeCycles = e.cycles;
            done.memoryTime = e.mem;
            done.classHint = -1;
            queue.pop_front();
            elapsed = 0.0;
            mirror.onCompletion(done, mirrorView());
            want = mirror.selectFrequency(mirrorView());
        }
        frequency = want;
        ASSERT_EQ(got, want) << "diverged at t=" << e.t;
    }
    EXPECT_TRUE(engine.warm());
}

TEST(ServeEngine, DistilledModeTrainsAndServesFastPath)
{
    const DvfsModel dvfs = DvfsModel::haswell();
    ServeConfig cfg = testConfig();
    cfg.distill = true;
    ServeEngine engine(dvfs, cfg);
    ASSERT_NE(engine.distilled(), nullptr);
    EXPECT_FALSE(engine.distilled()->model().trained());

    const std::vector<double> &grid = dvfs.frequencies();
    for (const Event &e : makeStream(400, 9)) {
        const ServeDecision d =
            e.arrival ? engine.onArrival(e.t)
                      : engine.onCompletion(e.t, e.cycles, e.mem);
        ASSERT_TRUE(d.ok);
        EXPECT_TRUE(std::find(grid.begin(), grid.end(), d.frequency) !=
                    grid.end());
    }
    EXPECT_TRUE(engine.warm());
    EXPECT_TRUE(engine.distilled()->model().trained());
    EXPECT_GE(engine.distilled()->retrains(), 1u);
    EXPECT_GT(engine.distilled()->fastDecisions(), 0u);
    const std::string json = engine.statsJson();
    EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
    EXPECT_NE(json.find("\"trained\":true"), std::string::npos);
}

// ------------------------------------------------------------------
// Daemon lifecycle (needs the built CLI)

struct ScratchDir
{
    ScratchDir()
    {
        char tmpl[] = "/tmp/rubik_serve_test_XXXXXX";
        if (mkdtemp(tmpl))
            path = tmpl;
    }
    ~ScratchDir()
    {
        if (!path.empty()) {
            std::error_code ec;
            std::filesystem::remove_all(path, ec);
        }
    }
    std::string path;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

struct CommandResult
{
    int status = -1;
    std::string out;
    std::string err;
};

CommandResult
runCommand(const std::string &cmd, const std::string &dir,
           const std::string &tag)
{
    const std::string out = dir + "/" + tag + ".stdout";
    const std::string err = dir + "/" + tag + ".stderr";
    CommandResult r;
    r.status = waitCommand(spawnShellCommand(cmd, out, err));
    r.out = readFile(out);
    r.err = readFile(err);
    return r;
}

class ServeDaemonCli : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        const char *env = std::getenv("RUBIK_CLI");
        if (!env || !*env || !std::filesystem::exists(env))
            GTEST_SKIP() << "RUBIK_CLI not set or missing";
        cli = env;
        ASSERT_FALSE(scratch.path.empty());
        socketPath = scratch.path + "/daemon.sock";
    }

    void TearDown() override
    {
        if (daemonPid > 0) {
            int status = 0;
            if (!waitCommandFor(daemonPid, 0.0, &status))
                killCommandGroup(daemonPid);
            daemonPid = -1;
        }
    }

    /// Start the daemon and block until it answers ping.
    void startDaemon(const std::string &extraFlags)
    {
        // "exec": the pid must be the daemon itself (not a lingering
        // sh wrapper) so ::kill(pid, SIGTERM) exercises its handler.
        daemonPid = spawnShellCommand(
            "exec " + cli + " serve --socket " + socketPath +
                " --bound-ms 2 " + extraFlags,
            scratch.path + "/daemon.stdout",
            scratch.path + "/daemon.stderr");
        ASSERT_GT(daemonPid, 0);
        for (int i = 0; i < 200; ++i) {
            try {
                if (serveQuery(socketPath, "ping", 2.0) == "ok")
                    return;
            } catch (const std::exception &) {
            }
            int status = 0;
            ASSERT_FALSE(waitCommandFor(daemonPid, 0.0, &status))
                << "daemon died during startup: "
                << describeWaitStatus(status) << "\n"
                << readFile(scratch.path + "/daemon.stderr");
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
        FAIL() << "daemon never answered ping";
    }

    std::string cli;
    ScratchDir scratch;
    std::string socketPath;
    pid_t daemonPid = -1;
};

/// Pull `"key":"value"` out of a one-line JSON reply.
std::string
jsonStringField(const std::string &json, const std::string &key)
{
    const std::string needle = "\"" + key + "\":\"";
    const std::size_t at = json.find(needle);
    if (at == std::string::npos)
        return "";
    const std::size_t start = at + needle.size();
    const std::size_t end = json.find('"', start);
    return end == std::string::npos ? "" : json.substr(start, end - start);
}

TEST_F(ServeDaemonCli, ReplayMatchesOneShotAndShutsDownOnSigterm)
{
    const std::string tracePath = scratch.path + "/t.rtrace";
    const std::string gen = " --app masstree --load 0.4 --requests 1500"
                            " --seed 42";

    // 1. A class-annotated trace, generated exactly like the one-shot
    //    run's.
    CommandResult r = runCommand(
        cli + " trace gen --out " + tracePath + gen, scratch.path, "gen");
    ASSERT_TRUE(commandSucceeded(r.status)) << r.err;

    // 2. The one-shot reference hash for the same workload and bound.
    r = runCommand(cli + gen +
                       " --bound-ms 2 --policy rubik --decision-hash"
                       " --csv",
                   scratch.path, "oneshot");
    ASSERT_TRUE(commandSucceeded(r.status)) << r.err;
    std::istringstream csv(r.out);
    std::string header, row;
    ASSERT_TRUE(std::getline(csv, header));
    ASSERT_TRUE(std::getline(csv, row));
    ASSERT_NE(header.find(",decisions,decision_hash"),
              std::string::npos)
        << header;
    const std::string wantHash = row.substr(row.rfind(',') + 1);
    ASSERT_EQ(wantHash.size(), 16u) << row;

    // 3. Daemon replay of the same trace must reproduce the decision
    //    stream byte for byte — same hash, via the same runPolicy path.
    startDaemon("");
    const std::string reply =
        serveQuery(socketPath, "replay " + tracePath + " rubik", 60.0);
    ASSERT_EQ(reply.compare(0, 1, "{"), 0) << reply;
    EXPECT_EQ(jsonStringField(reply, "decision_hash"), wantHash)
        << reply;

    // 4. Live events answer with frequencies; errors answer with err.
    EXPECT_EQ(serveQuery(socketPath, "a 0.001").compare(0, 2, "f "), 0);
    EXPECT_EQ(serveQuery(socketPath, "c 0.002 5e5 1e-4")
                  .compare(0, 2, "f "),
              0);
    EXPECT_EQ(serveQuery(socketPath, "c 0.003 5e5 1e-4")
                  .compare(0, 4, "err "),
              0);
    EXPECT_EQ(serveQuery(socketPath, "bogus").compare(0, 4, "err "), 0);

    // 5. --stats is one well-formed JSON line (python validates in CI;
    //    here: brace balance plus the keys the gate greps for).
    r = runCommand(cli + " serve --socket " + socketPath + " --stats",
                   scratch.path, "stats");
    ASSERT_TRUE(commandSucceeded(r.status)) << r.err;
    const std::string stats = r.out.substr(0, r.out.find('\n'));
    ASSERT_FALSE(stats.empty());
    EXPECT_EQ(stats.front(), '{');
    EXPECT_EQ(stats.back(), '}');
    EXPECT_NE(stats.find("\"decisions\":"), std::string::npos);
    EXPECT_NE(stats.find("\"decision_hash\":"), std::string::npos);

    // 6. SIGTERM: clean exit 0, socket removed.
    ASSERT_EQ(::kill(daemonPid, SIGTERM), 0);
    int status = 0;
    ASSERT_TRUE(waitCommandFor(daemonPid, 30.0, &status))
        << "daemon ignored SIGTERM";
    daemonPid = -1;
    EXPECT_TRUE(commandSucceeded(status)) << describeWaitStatus(status);
    EXPECT_FALSE(std::filesystem::exists(socketPath));
}

TEST_F(ServeDaemonCli, ShutdownCommandExitsCleanly)
{
    startDaemon("--distill --age-buckets 512");
    EXPECT_EQ(serveQuery(socketPath, "shutdown"), "ok");
    int status = 0;
    ASSERT_TRUE(waitCommandFor(daemonPid, 30.0, &status));
    daemonPid = -1;
    EXPECT_TRUE(commandSucceeded(status)) << describeWaitStatus(status);
    EXPECT_FALSE(std::filesystem::exists(socketPath));
}

TEST_F(ServeDaemonCli, RefusesSecondDaemonOnLiveSocket)
{
    startDaemon("");
    const CommandResult r = runCommand(
        cli + " serve --socket " + socketPath + " --bound-ms 2",
        scratch.path, "second");
    EXPECT_FALSE(commandSucceeded(r.status));
    EXPECT_NE(r.err.find("already listening"), std::string::npos)
        << r.err;
    // The loser must not have unlinked the winner's socket.
    EXPECT_EQ(serveQuery(socketPath, "ping"), "ok");
    EXPECT_EQ(serveQuery(socketPath, "shutdown"), "ok");
    int status = 0;
    ASSERT_TRUE(waitCommandFor(daemonPid, 30.0, &status));
    daemonPid = -1;
}

} // namespace
} // namespace rubik
