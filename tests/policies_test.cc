/**
 * @file
 * Tests for the baseline policies: analytic replay, StaticOracle
 * minimality, AdrenalineOracle tuning, DynamicOracle budgeting, and the
 * Pegasus feedback baseline.
 */

#include <gtest/gtest.h>

#include "policies/adrenaline.h"
#include "policies/dynamic_oracle.h"
#include "policies/pegasus.h"
#include "policies/replay.h"
#include "policies/static_oracle.h"
#include "sim/simulation.h"
#include "util/units.h"
#include "workloads/apps.h"
#include "workloads/trace_gen.h"

namespace rubik {
namespace {

struct Harness
{
    DvfsModel dvfs = DvfsModel::haswell(0.0);
    PowerModel pm{dvfs};

    Trace trace(AppId app, double load, int n, uint64_t seed = 11) const
    {
        return generateLoadTrace(makeApp(app), load, n,
                                 dvfs.nominalFrequency(), seed);
    }

    double bound(const Trace &t) const
    {
        return replayFixed(t, dvfs.nominalFrequency(), pm).tailLatency(0.95);
    }
};

TEST(Replay, NoQueueingAtTinyLoad)
{
    Harness s;
    const Trace t = s.trace(AppId::Masstree, 0.01, 200);
    const ReplayResult r = replayFixed(t, s.dvfs.nominalFrequency(), s.pm);
    // Latency == service time for nearly every request (rare Poisson
    // clusters may still queue).
    int unqueued = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
        const double service = t[i].serviceTime(s.dvfs.nominalFrequency());
        unqueued += std::abs(r.latencies[i] - service) < 1e-9;
    }
    EXPECT_GE(unqueued, static_cast<int>(t.size()) * 95 / 100);
}

TEST(Replay, LatenciesShrinkWithFrequency)
{
    Harness s;
    const Trace t = s.trace(AppId::Shore, 0.5, 2000);
    const ReplayResult slow = replayFixed(t, 1.2 * kGHz, s.pm);
    const ReplayResult fast = replayFixed(t, 3.0 * kGHz, s.pm);
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_LE(fast.latencies[i], slow.latencies[i] + 1e-12);
}

TEST(Replay, EnergyIncreasesWithFrequencyAtFixedWork)
{
    Harness s;
    const Trace t = s.trace(AppId::Masstree, 0.3, 1000);
    double prev = 0.0;
    for (double f : s.dvfs.frequencies()) {
        const double e = replayFixed(t, f, s.pm).coreActiveEnergy;
        EXPECT_GT(e, prev * 0.99); // monotone up to memory-time effects
        prev = e;
    }
}

TEST(Replay, PerRequestFrequencyVector)
{
    Harness s;
    Trace t;
    t.push_back({0.0, 2.4e6, 0.0});
    t.push_back({10.0, 2.4e6, 0.0});
    const ReplayResult r =
        replayFifo(t, {2.4 * kGHz, 1.2 * kGHz}, s.pm);
    EXPECT_NEAR(r.latencies[0], 1.0 * kMs, 1e-9);
    EXPECT_NEAR(r.latencies[1], 2.0 * kMs, 1e-9);
}

TEST(Replay, RequestEnergyUsesStallFactor)
{
    Harness s;
    TraceRecord compute{0.0, 2.4e6, 0.0};
    TraceRecord memory{0.0, 0.0, 1.0 * kMs};
    // Same 1 ms service time at nominal, but the memory-bound request
    // burns less energy.
    EXPECT_LT(requestEnergy(memory, 2.4 * kGHz, s.pm),
              requestEnergy(compute, 2.4 * kGHz, s.pm));
}

TEST(StaticOracle, PicksLowestFeasibleFrequency)
{
    Harness s;
    const Trace t = s.trace(AppId::Masstree, 0.3, 4000);
    const double bound = s.bound(t);
    const auto result = staticOracle(t, bound, 0.95, s.dvfs, s.pm);
    ASSERT_TRUE(result.feasible);
    // The chosen frequency meets the bound...
    EXPECT_LE(result.replay.tailLatency(0.95), bound);
    // ...and the next lower one does not.
    const std::size_t idx = s.dvfs.indexOf(result.frequency);
    if (idx > 0) {
        const auto lower =
            replayFixed(t, s.dvfs.frequencies()[idx - 1], s.pm);
        EXPECT_GT(lower.tailLatency(0.95), bound);
    }
}

TEST(StaticOracle, FrequencyRisesWithLoad)
{
    Harness s;
    double prev = 0.0;
    // Same bound for all loads: fixed-frequency tail at 50% load.
    const Trace t50 = s.trace(AppId::Masstree, 0.5, 4000);
    const double bound = s.bound(t50);
    for (double load : {0.3, 0.5, 0.7}) {
        const Trace t = s.trace(AppId::Masstree, load, 4000);
        const auto r = staticOracle(t, bound, 0.95, s.dvfs, s.pm);
        EXPECT_GE(r.frequency, prev);
        prev = r.frequency;
    }
}

TEST(StaticOracle, InfeasibleFallsBackToMax)
{
    Harness s;
    const Trace t = s.trace(AppId::Masstree, 0.9, 3000);
    // Impossible bound.
    const auto r = staticOracle(t, 1e-6, 0.95, s.dvfs, s.pm);
    EXPECT_FALSE(r.feasible);
    EXPECT_DOUBLE_EQ(r.frequency, s.dvfs.maxFrequency());
}

TEST(AdrenalineOracle, MeetsBoundAndBeatsNothing)
{
    Harness s;
    const Trace t = s.trace(AppId::Shore, 0.4, 4000);
    const double bound = s.bound(t);
    const auto adr =
        adrenalineOracle(t, bound, s.dvfs, s.pm, s.dvfs.nominalFrequency());
    ASSERT_TRUE(adr.feasible);
    EXPECT_LE(adr.replay.tailLatency(0.95), bound);
    EXPECT_LE(adr.baseFrequency, adr.boostFrequency);
}

TEST(AdrenalineOracle, AtMostStaticOracleEnergy)
{
    // Adrenaline with threshold above all requests degenerates to a
    // static frequency, so its tuned energy can't exceed StaticOracle's.
    Harness s;
    for (AppId app : {AppId::Masstree, AppId::Xapian}) {
        const Trace t = s.trace(app, 0.4, 3000);
        const double bound = s.bound(t);
        const auto st = staticOracle(t, bound, 0.95, s.dvfs, s.pm);
        const auto adr = adrenalineOracle(t, bound, s.dvfs, s.pm,
                                          s.dvfs.nominalFrequency());
        ASSERT_TRUE(adr.feasible);
        EXPECT_LE(adr.replay.coreActiveEnergy,
                  st.replay.coreActiveEnergy * 1.001);
    }
}

TEST(DynamicOracle, RespectsViolationBudget)
{
    Harness s;
    const Trace t = s.trace(AppId::Masstree, 0.5, 4000);
    const double bound = s.bound(t);
    const auto dyn = dynamicOracle(t, bound, 0.95, s.dvfs, s.pm);
    int violations = 0;
    for (double l : dyn.replay.latencies)
        violations += l > bound;
    EXPECT_LE(violations, static_cast<int>(0.05 * t.size()) + 1);
}

TEST(DynamicOracle, BeatsStaticOracleEnergy)
{
    // Short-term adaptation with oracle knowledge must save energy over
    // the best static choice (Fig. 9b shows 20-45% at 50% load).
    Harness s;
    for (AppId app : {AppId::Masstree, AppId::Shore}) {
        const Trace t = s.trace(app, 0.5, 4000);
        const double bound = s.bound(t);
        const auto st = staticOracle(t, bound, 0.95, s.dvfs, s.pm);
        const auto dyn = dynamicOracle(t, bound, 0.95, s.dvfs, s.pm);
        EXPECT_LT(dyn.replay.coreActiveEnergy,
                  st.replay.coreActiveEnergy);
    }
}

TEST(DynamicOracle, UsesGridFrequenciesOnly)
{
    Harness s;
    const Trace t = s.trace(AppId::Specjbb, 0.4, 2000);
    const auto dyn = dynamicOracle(t, s.bound(t), 0.95, s.dvfs, s.pm);
    for (double f : dyn.frequencies) {
        const double snapped =
            s.dvfs.frequencies()[s.dvfs.indexOf(f)];
        EXPECT_NEAR(f, snapped, 1.0);
    }
}

TEST(DynamicOracle, TinyLoadUsesLowFrequencies)
{
    Harness s;
    const Trace t = s.trace(AppId::Moses, 0.1, 300);
    // Generous bound: everything can run slow.
    const double bound = s.bound(t) * 3.0;
    const auto dyn = dynamicOracle(t, bound, 0.95, s.dvfs, s.pm);
    double mean_f = 0.0;
    for (double f : dyn.frequencies)
        mean_f += f;
    mean_f /= static_cast<double>(dyn.frequencies.size());
    EXPECT_LT(mean_f, 1.6 * kGHz);
}

TEST(Pegasus, ReactsToSustainedHighTail)
{
    Harness s;
    PegasusConfig cfg;
    cfg.latencyBound = 0.5 * kMs;
    PegasusPolicy pegasus(s.dvfs, cfg);

    // Run at 60% load with a tight bound: Pegasus should end up at a
    // high frequency.
    const Trace t = s.trace(AppId::Masstree, 0.6, 20000);
    const SimResult r = simulate(t, pegasus, s.dvfs, s.pm);
    EXPECT_GT(r.core.freqResidency[s.dvfs.indexOf(s.dvfs.maxFrequency())] +
                  r.core.freqResidency[s.dvfs.indexOf(3.2 * kGHz)],
              0.0);
}

TEST(Pegasus, SettlesLowUnderLooseBound)
{
    Harness s;
    PegasusConfig cfg;
    cfg.latencyBound = 50.0 * kMs; // enormously loose
    cfg.epoch = 0.2;               // adapt faster for the short test
    PegasusPolicy pegasus(s.dvfs, cfg);
    const Trace t = s.trace(AppId::Masstree, 0.2, 20000);
    const SimResult r = simulate(t, pegasus, s.dvfs, s.pm);
    // Most busy time should end up at the lowest frequencies.
    const double low = r.core.freqResidency[0] + r.core.freqResidency[1] +
                       r.core.freqResidency[2];
    EXPECT_GT(low, 0.5 * r.core.busyTime);
}

} // namespace
} // namespace rubik
