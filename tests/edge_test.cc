/**
 * @file
 * Edge-case and failure-injection tests across modules: degenerate
 * demands, saturating loads, impossible latency bounds, exact Eq. 2
 * frequency arithmetic on crafted distributions, DVFS corner cases, and
 * simultaneous events.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/rubik_controller.h"
#include "policies/replay.h"
#include "policies/static_oracle.h"
#include "sim/simulation.h"
#include "stats/percentile.h"
#include "util/units.h"
#include "workloads/trace_gen.h"

namespace rubik {
namespace {

Request
makeRequest(uint64_t id, double arrival, double cycles, double mem)
{
    Request r;
    r.id = id;
    r.arrivalTime = arrival;
    r.computeCycles = cycles;
    r.memoryTime = mem;
    return r;
}

/// A Rubik controller warmed with constant (cycles, mem) demands.
RubikController
warmRubik(const DvfsModel &dvfs, double bound, double cycles, double mem,
          const CoreEngine &core)
{
    RubikConfig cfg;
    cfg.latencyBound = bound;
    cfg.feedback = false;
    cfg.warmupSamples = 16;
    RubikController rubik(dvfs, cfg);
    for (int i = 0; i < 64; ++i) {
        CompletedRequest done;
        done.computeCycles = cycles;
        done.memoryTime = mem;
        done.completionTime = static_cast<double>(i) * 1e-4;
        rubik.onCompletion(done, core.view());
    }
    rubik.periodicUpdate(core.view());
    return rubik;
}

TEST(Eq2Arithmetic, SingleRequestConstantWork)
{
    // Constant 2.4e6-cycle requests, no memory; L = 2 ms. A freshly
    // dispatched request needs f >= 2.4e6 / 2ms = 1.2 GHz. Bucket
    // granularity can push the estimate one 200 MHz step up.
    const DvfsModel dvfs = DvfsModel::haswell(0.0);
    const PowerModel pm(dvfs);
    CoreEngine core(dvfs, pm);
    RubikController rubik =
        warmRubik(dvfs, 2.0 * kMs, 2.4e6, 0.0, core);
    ASSERT_TRUE(rubik.warm());

    core.enqueue(makeRequest(0, 0.0, 2.4e6, 0.0));
    const double f = rubik.selectFrequency(core.view());
    EXPECT_GE(f, 1.2 * kGHz);
    EXPECT_LE(f, 1.4 * kGHz);
}

TEST(Eq2Arithmetic, QueuedRequestDoublesWork)
{
    // Two queued constant requests: the second's completion needs
    // ~2 * 2.4e6 cycles within the same 2 ms -> f >= 2.4 GHz.
    const DvfsModel dvfs = DvfsModel::haswell(0.0);
    const PowerModel pm(dvfs);
    CoreEngine core(dvfs, pm);
    RubikController rubik =
        warmRubik(dvfs, 2.0 * kMs, 2.4e6, 0.0, core);

    core.enqueue(makeRequest(0, 0.0, 2.4e6, 0.0));
    core.enqueue(makeRequest(1, 0.0, 2.4e6, 0.0));
    const double f = rubik.selectFrequency(core.view());
    EXPECT_GE(f, 2.4 * kGHz);
    EXPECT_LE(f, 2.8 * kGHz);
}

TEST(Eq2Arithmetic, MemoryTimeShrinksSlack)
{
    // Constant work split 50/50: 1.2e6 cycles + 0.5 ms memory, L = 2 ms.
    // Slack for compute is L - m ~ 1.5 ms -> f >= 0.8 GHz.
    const DvfsModel dvfs = DvfsModel::haswell(0.0);
    const PowerModel pm(dvfs);
    CoreEngine core(dvfs, pm);
    RubikController rubik =
        warmRubik(dvfs, 2.0 * kMs, 1.2e6, 0.5 * kMs, core);

    core.enqueue(makeRequest(0, 0.0, 1.2e6, 0.5 * kMs));
    const double f1 = rubik.selectFrequency(core.view());
    EXPECT_GE(f1, 0.8 * kGHz);
    EXPECT_LE(f1, 1.0 * kGHz);

    // With a 0.9 ms bound, slack ~0.4ms -> f >= 3 GHz.
    RubikController tight =
        warmRubik(dvfs, 0.9 * kMs, 1.2e6, 0.5 * kMs, core);
    const double f2 = tight.selectFrequency(core.view());
    EXPECT_GE(f2, 3.0 * kGHz);
}

TEST(Eq2Arithmetic, ExhaustedSlackForcesMaxFrequency)
{
    const DvfsModel dvfs = DvfsModel::haswell(0.0);
    const PowerModel pm(dvfs);
    CoreEngine core(dvfs, pm);
    RubikController rubik =
        warmRubik(dvfs, 1.0 * kMs, 2.4e6, 0.0, core);

    // Request that has been waiting longer than the whole bound.
    core.enqueue(makeRequest(0, 0.0, 2.4e6, 0.0));
    core.advanceTo(1.5 * kMs);
    EXPECT_DOUBLE_EQ(rubik.selectFrequency(core.view()), dvfs.maxFrequency());
}

TEST(Eq2Arithmetic, OlderRequestsNeedHigherFrequency)
{
    const DvfsModel dvfs = DvfsModel::haswell(0.0);
    const PowerModel pm(dvfs);

    auto freq_after_wait = [&](double wait) {
        CoreEngine core(dvfs, pm);
        RubikController rubik =
            warmRubik(dvfs, 2.0 * kMs, 2.4e6, 0.0, core);
        core.advanceTo(wait);
        core.enqueue(makeRequest(0, wait, 2.4e6, 0.0));
        // Pretend it arrived at t=0 by rebuilding the view: enqueue a
        // fresh request and advance so t_i grows.
        core.advanceTo(wait + 0.5 * kMs);
        return rubik.selectFrequency(core.view());
    };
    // 0.5 ms into a 2 ms budget (with ~1 ms of work left at 2.4 GHz):
    // needs more than the fresh-request frequency.
    EXPECT_GE(freq_after_wait(0.0), 1.2 * kGHz);
}

TEST(FailureInjection, ImpossibleBoundRunsFlatOut)
{
    const DvfsModel dvfs = DvfsModel::haswell();
    const PowerModel pm(dvfs);
    const AppProfile app = makeApp(AppId::Masstree);
    const Trace t =
        generateLoadTrace(app, 0.5, 3000, dvfs.nominalFrequency(), 3);

    RubikConfig cfg;
    cfg.latencyBound = 1.0 * kUs; // absurd
    RubikController rubik(dvfs, cfg);
    const SimResult r = simulate(t, rubik, dvfs, pm);

    // Everything completed, mostly at max frequency.
    EXPECT_EQ(r.completed.size(), t.size());
    const double top =
        r.core.freqResidency[dvfs.indexOf(dvfs.maxFrequency())];
    EXPECT_GT(top, 0.9 * r.core.busyTime);
}

TEST(FailureInjection, OverloadStillCompletes)
{
    // Load 120% of capacity: the queue grows without bound but the
    // simulation must terminate and account all requests.
    const DvfsModel dvfs = DvfsModel::haswell(0.0);
    const PowerModel pm(dvfs);
    const AppProfile app = makeApp(AppId::Specjbb);
    const Trace t =
        generateLoadTrace(app, 1.2, 4000, dvfs.nominalFrequency(), 5);
    FixedFrequencyPolicy fixed(dvfs.nominalFrequency());
    const SimResult r = simulate(t, fixed, dvfs, pm);
    EXPECT_EQ(r.completed.size(), t.size());
    // Mean latency far above mean service time (queue buildup).
    EXPECT_GT(r.meanLatency(),
              5.0 * traceMeanServiceTime(t, dvfs.nominalFrequency()));
}

TEST(FailureInjection, ZeroDemandRequestCompletesInstantly)
{
    const DvfsModel dvfs = DvfsModel::haswell(0.0);
    const PowerModel pm(dvfs);
    CoreEngine core(dvfs, pm);
    core.enqueue(makeRequest(0, 0.0, 0.0, 0.0));
    EXPECT_NEAR(core.nextEventTime(), 0.0, 1e-12);
    core.advanceTo(core.nextEventTime());
    auto done = core.processEvents();
    ASSERT_TRUE(done.has_value());
    EXPECT_NEAR(done->latency(), 0.0, 1e-12);
}

TEST(FailureInjection, SimultaneousArrivalsKeepFifoOrder)
{
    const DvfsModel dvfs = DvfsModel::haswell(0.0);
    const PowerModel pm(dvfs);
    Trace t;
    for (int i = 0; i < 5; ++i)
        t.push_back({1.0 * kMs, 1.0e6, 0.0}); // all at the same instant
    FixedFrequencyPolicy fixed(1.0 * kGHz);
    const SimResult r = simulate(t, fixed, dvfs, pm);
    ASSERT_EQ(r.completed.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(r.completed[i].id, i);
    // Latencies stack: 1ms, 2ms, ...
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_NEAR(r.completed[i].latency(),
                    static_cast<double>(i + 1) * 1.0 * kMs, 1e-9);
    }
}

TEST(FailureInjection, RubikWithDegenerateProfile)
{
    // All profiled requests identical: the table collapses to point
    // masses but must keep working.
    const DvfsModel dvfs = DvfsModel::haswell(0.0);
    const PowerModel pm(dvfs);
    CoreEngine core(dvfs, pm);
    RubikController rubik = warmRubik(dvfs, 1.0 * kMs, 1.0, 0.0, core);
    core.enqueue(makeRequest(0, 0.0, 1.0, 0.0));
    const double f = rubik.selectFrequency(core.view());
    EXPECT_GE(f, dvfs.minFrequency());
    EXPECT_LE(f, dvfs.maxFrequency());
}

class BoundTightnessSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(BoundTightnessSweep, TighterBoundsCostEnergy)
{
    // Property: energy is non-increasing in the latency bound (a looser
    // bound can only allow lower frequencies).
    const double mult = GetParam();
    const DvfsModel dvfs = DvfsModel::haswell();
    const PowerModel pm(dvfs);
    const AppProfile app = makeApp(AppId::Masstree);
    const Trace t =
        generateLoadTrace(app, 0.4, 5000, dvfs.nominalFrequency(), 7);
    const double base_bound =
        replayFixed(t, dvfs.nominalFrequency(), pm).tailLatency(0.95);

    auto energy = [&](double bound) {
        RubikConfig cfg;
        cfg.latencyBound = bound;
        cfg.feedback = false;
        RubikController rubik(dvfs, cfg);
        return simulate(t, rubik, dvfs, pm).coreActiveEnergy();
    };
    EXPECT_GE(energy(base_bound * mult) * 1.02,
              energy(base_bound * mult * 2.0));
}

INSTANTIATE_TEST_SUITE_P(Multipliers, BoundTightnessSweep,
                         ::testing::Values(0.75, 1.0, 1.5));

class QuantizeRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(QuantizeRoundTrip, UpDominatesDown)
{
    const DvfsModel dvfs = DvfsModel::haswell();
    Rng rng(static_cast<uint64_t>(GetParam()));
    for (int i = 0; i < 1000; ++i) {
        const double f = rng.uniform(0.1 * kGHz, 4.0 * kGHz);
        const double up = dvfs.quantizeUp(f);
        const double down = dvfs.quantizeDown(f);
        EXPECT_GE(up + 1.0, down);
        if (f >= dvfs.minFrequency() && f <= dvfs.maxFrequency()) {
            EXPECT_GE(up + 1.0, f);
            EXPECT_LE(down - 1.0, f);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantizeRoundTrip,
                         ::testing::Values(1, 2, 3));

TEST(StaticOracleEdge, SingleRequestTrace)
{
    const DvfsModel dvfs = DvfsModel::haswell(0.0);
    const PowerModel pm(dvfs);
    Trace t;
    t.push_back({0.0, 2.4e6, 0.0}); // 1 ms at nominal
    // Bound of 2 ms: the oracle can halve the frequency.
    const auto r = staticOracle(t, 2.0 * kMs, 0.95, dvfs, pm);
    ASSERT_TRUE(r.feasible);
    EXPECT_LE(r.frequency, 1.4 * kGHz);
    EXPECT_GE(r.frequency, 1.2 * kGHz);
}

TEST(RollingWindowEdge, FeedbackWithSparseTraffic)
{
    // moses at 10% load: ~25 completions/s, fewer than the 32-sample
    // minimum in many 1 s windows. The controller must stay stable.
    const DvfsModel dvfs = DvfsModel::haswell();
    const PowerModel pm(dvfs);
    const AppProfile app = makeApp(AppId::Moses);
    const Trace t =
        generateLoadTrace(app, 0.1, 600, dvfs.nominalFrequency(), 11);
    const double bound =
        replayFixed(t, dvfs.nominalFrequency(), pm).tailLatency(0.95);
    RubikConfig cfg;
    cfg.latencyBound = bound;
    RubikController rubik(dvfs, cfg);
    const SimResult r = simulate(t, rubik, dvfs, pm);
    EXPECT_EQ(r.completed.size(), t.size());
    EXPECT_LE(r.tailLatency(0.95), bound * 1.15);
}

} // namespace
} // namespace rubik
