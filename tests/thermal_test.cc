/**
 * @file
 * Closed-form pins for the thermal RC network (power/thermal_model.h)
 * and the thermally-aware simulation path:
 *
 *  - a single-node network (packageC = 0 pins the package at ambient)
 *    stepped quantum by quantum matches the analytic step-response
 *    exponential to ulp-scale tolerance;
 *  - the steady state reached under temperature-dependent power
 *    satisfies the fixed-point equation P(T*) * R = T* - T_amb;
 *  - leakScale is exactly 1 at the reference temperature and strictly
 *    monotone in temperature;
 *  - per-quantum leakage corrections recorded in the thermal timeline
 *    sum (in order) to the run's total bitwise — energy conservation
 *    over the event partition;
 *  - with ThermalOptions disabled the simulation is bitwise the legacy
 *    path, and RubikThermal with roomy headroom is bitwise plain Rubik;
 *  - RubikThermal under a tight junction limit keeps the die at the
 *    limit (residency bounded by quantization), the mirror of
 *    fleet_test's cap-residency gate;
 *  - fleet thermal derating caps what the water-filler can grant.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/rubik_controller.h"
#include "fleet/fleet_sim.h"
#include "policies/rubik_thermal.h"
#include "power/thermal_model.h"
#include "runner/sweep_runner.h"
#include "sim/simulation.h"
#include "util/units.h"
#include "workloads/apps.h"
#include "workloads/trace_gen.h"

namespace rubik {
namespace {

ThermalParams
singleNodeParams()
{
    ThermalParams p;
    p.packageC = 0.0; // Pins the package node at ambient.
    return p;
}

TEST(ThermalParams, ValidateRejectsNonPhysicalFields)
{
    const auto expect_throws = [](void (*mutate)(ThermalParams &)) {
        ThermalParams p;
        mutate(p);
        EXPECT_THROW(p.validate(), std::runtime_error);
    };
    expect_throws([](ThermalParams &p) { p.coreR = 0.0; });
    expect_throws([](ThermalParams &p) { p.coreC = -1.0; });
    expect_throws([](ThermalParams &p) { p.packageR = 0.0; });
    expect_throws([](ThermalParams &p) { p.junction = p.ambient; });
    expect_throws([](ThermalParams &p) { p.leakBeta = -0.1; });
    expect_throws([](ThermalParams &p) { p.quantum = 0.0; });
    EXPECT_NO_THROW(ThermalParams().validate());
    EXPECT_THROW(ThermalModel(ThermalParams(), 0), std::runtime_error);
}

TEST(ThermalModel, SingleNodeStepMatchesAnalyticExponential)
{
    const ThermalParams p = singleNodeParams();
    ThermalModel tm(p, 1);
    const double watts = 5.0;
    const double dt = p.quantum;
    const double tau = p.coreR * p.coreC;

    // k quantum steps vs the closed-form step response
    //   T(t) = T_amb + P*R * (1 - exp(-t / tau)).
    // Each step multiplies by exp(-dt/tau) exactly, so the discrete
    // trajectory accumulates at most ~k ulps of drift relative to the
    // single-exp analytic form.
    for (int k = 1; k <= 256; ++k) {
        tm.step(dt, watts);
        const double t = static_cast<double>(k) * dt;
        const double analytic =
            p.ambient +
            watts * p.coreR * (1.0 - std::exp(-t / tau));
        const double tol = 512.0 *
                           std::numeric_limits<double>::epsilon() *
                           std::abs(analytic);
        EXPECT_NEAR(tm.coreTemp(0), analytic, tol) << "step " << k;
    }
}

TEST(ThermalModel, SteadyStateSatisfiesFixedPointEquation)
{
    const ThermalParams p = singleNodeParams();
    ThermalModel tm(p, 1);
    const double base_watts = 3.0;

    // Drive with temperature-dependent power P(T) = P0 * leakScale(T)
    // (sampled at the step's start temperature, like the simulator)
    // until the trajectory stops moving. The settle point must satisfy
    //   P(T*) * R = T* - T_amb
    // — heat in equals heat conducted to ambient.
    for (int k = 0; k < 40000; ++k)
        tm.step(p.quantum, base_watts * tm.leakScale(tm.coreTemp(0)));
    const double t_star = tm.coreTemp(0);
    const double residual =
        base_watts * tm.leakScale(t_star) * p.coreR -
        (t_star - p.ambient);
    EXPECT_LT(std::abs(residual), 1e-9)
        << "fixed point violated at T* = " << t_star;
    EXPECT_GT(t_star, p.ambient + base_watts * p.coreR)
        << "leakage feedback must push T* above the fixed-leakage "
           "settle point";
}

TEST(ThermalModel, LeakScaleUnitAtReferenceAndMonotone)
{
    const ThermalModel tm(ThermalParams(), 1);
    EXPECT_EQ(tm.leakScale(tm.params().leakTref), 1.0);
    double prev = 0.0;
    for (double t = 20.0; t <= 110.0; t += 1.0) {
        const double s = tm.leakScale(t);
        EXPECT_GT(s, prev) << "at " << t;
        prev = s;
    }
}

TEST(ThermalModel, SustainedBudgetPowerSettlesAtJunction)
{
    // steadyStateCoreBudget is defined as the power that settles the
    // network exactly at the junction limit; heating at the budget for
    // many time constants must approach it (single-node closed form).
    const ThermalParams p = singleNodeParams();
    ThermalModel tm(p, 1);
    const double budget = tm.steadyStateCoreBudget(1);
    EXPECT_DOUBLE_EQ(budget,
                     (p.junction - p.ambient) / p.coreR);
    for (int k = 0; k < 20000; ++k)
        tm.step(p.quantum, budget);
    EXPECT_NEAR(tm.coreTemp(0), p.junction, 1e-6);

    // The two-node budget derates further: the package resistance is
    // shared by every active core.
    const ThermalModel two(ThermalParams(), 4);
    EXPECT_DOUBLE_EQ(two.totalResistance(4),
                     ThermalParams().coreR +
                         4.0 * ThermalParams().packageR);
    EXPECT_LT(two.steadyStateCoreBudget(4), budget);
}

struct SimSetup
{
    AppProfile app = makeApp(AppId::Masstree);
    DvfsModel dvfs = DvfsModel::haswell();
    PowerModel power;
    Trace trace;
    double bound = 0.0;

    explicit SimSetup(double load, int requests = 1500)
        : power(dvfs)
    {
        const double nominal = dvfs.nominalFrequency();
        trace = generateLoadTrace(app, load, requests, nominal, 42);
        annotateClasses(trace, 0.85, nominal);
        bound = 0.7 * kMs;
    }
};

TEST(ThermalSim, DisabledIsBitwiseLegacy)
{
    const SimSetup s(0.5);
    RubikConfig rc;
    rc.latencyBound = s.bound;

    RubikController legacy(s.dvfs, rc);
    const SimResult a = simulate(s.trace, legacy, s.dvfs, s.power);

    RubikController with_opts(s.dvfs, rc);
    const SimResult b = simulate(s.trace, with_opts, s.dvfs, s.power,
                                 SimConfig(), ThermalOptions());

    EXPECT_FALSE(b.thermal.enabled);
    EXPECT_EQ(b.thermal.quanta, 0u);
    EXPECT_EQ(b.thermal.extraLeakageEnergy, 0.0);
    EXPECT_EQ(a.core.energy.coreActive, b.core.energy.coreActive);
    EXPECT_EQ(a.core.energy.coreIdle, b.core.energy.coreIdle);
    EXPECT_EQ(a.core.numTransitions, b.core.numTransitions);
    EXPECT_EQ(a.tailLatency(0.95), b.tailLatency(0.95));
    EXPECT_EQ(a.core.staticBusyEnergy, b.core.staticBusyEnergy);
}

TEST(ThermalSim, TimelineLeakageSumsToTotalBitwise)
{
    const SimSetup s(0.6);
    RubikConfig rc;
    rc.latencyBound = s.bound;
    RubikController rubik(s.dvfs, rc);

    SimConfig cfg;
    cfg.recordTimeline = true;
    ThermalOptions thermal;
    thermal.enabled = true;
    const SimResult r =
        simulate(s.trace, rubik, s.dvfs, s.power, cfg, thermal);

    ASSERT_TRUE(r.thermal.enabled);
    ASSERT_GT(r.thermal.quanta, 0u);
    ASSERT_EQ(r.thermal.timeline.size(), r.thermal.quanta);

    // Energy conservation over the event partition: the in-order sum
    // of per-quantum corrections reproduces the run total bitwise
    // (both are the same additions in the same order).
    double sum = 0.0;
    for (const ThermalSample &sample : r.thermal.timeline)
        sum += sample.extraLeakEnergy;
    EXPECT_EQ(sum, r.thermal.extraLeakageEnergy);
    EXPECT_GT(r.thermal.extraLeakageEnergy, 0.0);
    EXPECT_EQ(r.thermalCoreActiveEnergy(),
              r.core.energy.coreActive +
                  r.thermal.extraLeakageEnergy);

    // The static share is a sub-account of active energy.
    EXPECT_GT(r.core.staticBusyEnergy, 0.0);
    EXPECT_LT(r.core.staticBusyEnergy, r.core.energy.coreActive);
    // And the die warmed above ambient while staying physical.
    EXPECT_GT(r.thermal.maxCoreTemp, thermal.params.ambient);
    EXPECT_GT(r.thermal.maxCoreTemp, r.thermal.maxPackageTemp);
}

TEST(ThermalSim, RunsAreDeterministic)
{
    const SimSetup s(0.6);
    PolicyRunRequest req;
    req.trace = &s.trace;
    req.bound = s.bound;
    req.dvfs = &s.dvfs;
    req.power = &s.power;
    req.options.thermal.enabled = true;

    const PolicyOutcome a = runPolicy("rubik-thermal", req);
    const PolicyOutcome b = runPolicy("rubik-thermal", req);
    EXPECT_EQ(a.tailLatency, b.tailLatency);
    EXPECT_EQ(a.energyPerRequest, b.energyPerRequest);
    EXPECT_EQ(a.maxCoreTemp, b.maxCoreTemp);
    EXPECT_EQ(a.extraLeakagePerRequest, b.extraLeakagePerRequest);
}

TEST(ThermalSim, RubikThermalRequiresThermalModeling)
{
    const SimSetup s(0.4);
    PolicyRunRequest req;
    req.trace = &s.trace;
    req.bound = s.bound;
    req.dvfs = &s.dvfs;
    req.power = &s.power;
    EXPECT_THROW(runPolicy("rubik-thermal", req), std::runtime_error);
}

TEST(ThermalSim, RoomyHeadroomIsBitwisePlainRubik)
{
    // When the junction limit never binds, the thermal ceiling stays
    // at the grid maximum and RubikThermal's decisions are exactly the
    // inner controller's.
    const SimSetup s(0.6);
    PolicyRunRequest req;
    req.trace = &s.trace;
    req.bound = s.bound;
    req.dvfs = &s.dvfs;
    req.power = &s.power;
    req.options.thermal.enabled = true;
    req.options.thermal.params.junction = 200.0;

    const PolicyOutcome rubik = runPolicy("rubik", req);
    const PolicyOutcome thermal = runPolicy("rubik-thermal", req);
    EXPECT_EQ(rubik.tailLatency, thermal.tailLatency);
    EXPECT_EQ(rubik.energyPerRequest, thermal.energyPerRequest);
    EXPECT_EQ(rubik.transitions, thermal.transitions);
    EXPECT_EQ(rubik.maxCoreTemp, thermal.maxCoreTemp);
}

TEST(ThermalSim, RubikThermalBoundsJunctionResidency)
{
    // Under a junction limit well inside the workload's self-heating,
    // the RC-aware ceiling must keep the die at the limit: residency
    // above the junction is bounded by the control quantization (one
    // thermal quantum plus one transition latency), the mirror of
    // fleet_test's cap-residency gate. Plain Rubik has no such bound.
    const SimSetup s(0.7, 3000);
    ThermalOptions thermal;
    thermal.enabled = true;
    thermal.params.junction = 52.0;

    RubikThermalConfig cfg;
    cfg.base.latencyBound = s.bound;
    cfg.thermal = thermal.params;
    RubikThermalController ctrl(s.dvfs, s.power, cfg);
    const SimResult guarded = simulate(s.trace, ctrl, s.dvfs, s.power,
                                       SimConfig(), thermal);
    ASSERT_GT(guarded.thermal.quanta, 0u);
    EXPECT_LE(guarded.thermal.timeAboveJunction,
              thermal.params.quantum + s.dvfs.transitionLatency() +
                  1e-12);
    EXPECT_LE(guarded.thermal.maxCoreTemp,
              thermal.params.junction + 0.5);

    RubikConfig rc;
    rc.latencyBound = s.bound;
    RubikController plain(s.dvfs, rc);
    const SimResult hot = simulate(s.trace, plain, s.dvfs, s.power,
                                   SimConfig(), thermal);
    EXPECT_GT(hot.thermal.maxCoreTemp, thermal.params.junction)
        << "stress config too mild: plain rubik never crossed the "
           "junction limit, so the guarded run proves nothing";
}

TEST(ThermalFleet, DeratingCapsGrantedPower)
{
    FleetConfig cfg;
    cfg.machines = 8;
    cfg.epochs = 2;
    cfg.requestsPerEpoch = 400;
    cfg.budgetWatts = 0.0; // Uncapped: only the thermal budget binds.

    const FleetResult unguarded = runFleet(cfg, 2);

    cfg.thermal.enabled = true;
    cfg.thermal.params.junction = 60.0;
    const FleetResult guarded = runFleet(cfg, 2);

    // The derated fleet cannot draw more than the per-core steady-state
    // budget, and must draw less than the unguarded fleet.
    const ThermalModel tm(cfg.thermal.params, cfg.coresPerMachine);
    const double ceiling =
        tm.steadyStateCoreBudget(cfg.coresPerMachine) *
        cfg.totalCores();
    EXPECT_LT(guarded.peakPower, unguarded.peakPower);
    EXPECT_LE(guarded.peakPower, ceiling * 1.05)
        << "granted power exceeds the thermal envelope";

    cfg.thermal.params.junction = 40.0; // Below ambient: invalid.
    EXPECT_THROW(runFleet(cfg, 2), std::runtime_error);
}

} // namespace
} // namespace rubik
