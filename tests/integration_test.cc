/**
 * @file
 * End-to-end integration tests: Rubik running in the event-driven
 * simulator across applications and loads. These check the paper's
 * headline behaviors: the tail latency bound holds, Rubik saves
 * substantial energy over fixed-frequency and StaticOracle operation, it
 * adapts to load steps at sub-second timescales, and the feedback loop
 * recovers extra power without blowing the bound.
 */

#include <gtest/gtest.h>

#include "core/rubik_controller.h"
#include "policies/replay.h"
#include "policies/static_oracle.h"
#include "sim/metrics.h"
#include "stats/percentile.h"
#include "sim/simulation.h"
#include "util/units.h"
#include "workloads/apps.h"
#include "workloads/trace_gen.h"

namespace rubik {
namespace {

struct Bench
{
    DvfsModel dvfs = DvfsModel::haswell(); // 4us transitions
    PowerModel pm{dvfs};

    Trace trace(AppId app, double load, int n, uint64_t seed = 5) const
    {
        return generateLoadTrace(makeApp(app), load, n,
                                 dvfs.nominalFrequency(), seed);
    }

    /// Paper methodology: bound = fixed-frequency tail at 50% load.
    double bound(AppId app, uint64_t seed = 5) const
    {
        const Trace t = trace(app, 0.5, 6000, seed);
        return replayFixed(t, dvfs.nominalFrequency(), pm)
            .tailLatency(0.95);
    }

    SimResult runRubik(const Trace &t, double latency_bound,
                       bool feedback = true) const
    {
        RubikConfig cfg;
        cfg.latencyBound = latency_bound;
        cfg.feedback = feedback;
        RubikController rubik(dvfs, cfg);
        return simulate(t, rubik, dvfs, pm);
    }
};

struct AppLoad
{
    AppId app;
    double load;
};

class RubikMeetsBound : public ::testing::TestWithParam<AppLoad>
{
};

TEST_P(RubikMeetsBound, TailWithinBound)
{
    const auto [app, load] = GetParam();
    Bench b;
    const double L = b.bound(app);
    const Trace t = b.trace(app, load, 8000, /*seed=*/21);
    const SimResult r = b.runRubik(t, L);
    // Allow a small excursion (the paper's own feedback trims around the
    // bound); a 10% miss would be a real violation.
    EXPECT_LE(r.tailLatency(0.95), L * 1.10)
        << appName(app) << " @ " << load;
}

INSTANTIATE_TEST_SUITE_P(
    AppsAndLoads, RubikMeetsBound,
    ::testing::Values(AppLoad{AppId::Masstree, 0.3},
                      AppLoad{AppId::Masstree, 0.5},
                      AppLoad{AppId::Moses, 0.3},
                      AppLoad{AppId::Moses, 0.5},
                      AppLoad{AppId::Shore, 0.3},
                      AppLoad{AppId::Shore, 0.5},
                      AppLoad{AppId::Specjbb, 0.3},
                      AppLoad{AppId::Specjbb, 0.5},
                      AppLoad{AppId::Xapian, 0.3},
                      AppLoad{AppId::Xapian, 0.5}));

class RubikSavesPower : public ::testing::TestWithParam<AppLoad>
{
};

TEST_P(RubikSavesPower, BeatsFixedFrequency)
{
    const auto [app, load] = GetParam();
    Bench b;
    const double L = b.bound(app);
    const Trace t = b.trace(app, load, 8000, /*seed=*/22);

    const SimResult rubik = b.runRubik(t, L);
    const ReplayResult fixed =
        replayFixed(t, b.dvfs.nominalFrequency(), b.pm);

    EXPECT_LT(rubik.coreActiveEnergy(), fixed.coreActiveEnergy * 0.95)
        << appName(app) << " @ " << load;
}

INSTANTIATE_TEST_SUITE_P(
    AppsAndLoads, RubikSavesPower,
    ::testing::Values(AppLoad{AppId::Masstree, 0.3},
                      AppLoad{AppId::Moses, 0.3},
                      AppLoad{AppId::Shore, 0.3},
                      AppLoad{AppId::Specjbb, 0.3},
                      AppLoad{AppId::Xapian, 0.3}));

TEST(RubikIntegration, BeatsStaticOracleOnMasstree)
{
    // Fig. 1a: sub-millisecond adaptation beats the best static choice.
    Bench b;
    const double L = b.bound(AppId::Masstree);
    const Trace t = b.trace(AppId::Masstree, 0.4, 9000, 23);

    const SimResult rubik = b.runRubik(t, L);
    const auto so = staticOracle(t, L, 0.95, b.dvfs, b.pm);

    ASSERT_TRUE(so.feasible);
    EXPECT_LT(rubik.coreActiveEnergy(), so.replay.coreActiveEnergy);
}

TEST(RubikIntegration, WarmupRunsAtMaxFrequency)
{
    Bench b;
    RubikConfig cfg;
    cfg.latencyBound = 1.0 * kMs;
    RubikController rubik(b.dvfs, cfg);

    // Before any profiling, Rubik must be conservative.
    CoreEngine core(b.dvfs, b.pm);
    Request r;
    r.arrivalTime = 0.0;
    r.computeCycles = 1e6;
    core.enqueue(r);
    EXPECT_DOUBLE_EQ(rubik.selectFrequency(core.view()), b.dvfs.maxFrequency());
}

TEST(RubikIntegration, AdaptsToLoadStepWithinWindow)
{
    // Fig. 1b: a 30% -> 50% load step must not blow up the tail; Rubik
    // reacts on arrival/completion, not on a multi-second feedback loop.
    Bench b;
    const AppProfile app = makeApp(AppId::Masstree);
    const double L = b.bound(AppId::Masstree);
    const Trace t = generateSteppedTrace(
        app, {{0.0, 0.3}, {2.0, 0.5}}, 4.0, b.dvfs.nominalFrequency(), 29);

    const SimResult r = b.runRubik(t, L);

    // Tail over the second half (post-step), excluding a 200ms settle.
    std::vector<double> post;
    for (const auto &c : r.completed) {
        if (c.arrivalTime > 2.2)
            post.push_back(c.latency());
    }
    ASSERT_GT(post.size(), 500u);
    EXPECT_LE(percentile(post, 0.95), L * 1.15);
}

TEST(RubikIntegration, HigherLoadUsesHigherFrequencies)
{
    Bench b;
    const double L = b.bound(AppId::Masstree);

    auto mean_busy_freq = [&](double load) {
        const Trace t = b.trace(AppId::Masstree, load, 6000, 31);
        const SimResult r = b.runRubik(t, L);
        double weighted = 0.0;
        for (std::size_t i = 0; i < r.core.freqResidency.size(); ++i)
            weighted += r.core.freqResidency[i] * b.dvfs.frequencies()[i];
        return weighted / r.core.busyTime;
    };

    EXPECT_LT(mean_busy_freq(0.2), mean_busy_freq(0.6));
}

TEST(RubikIntegration, FeedbackSavesEnergyWithoutViolation)
{
    // Sec. 4.2: the PI stage trims conservatism. Feedback-on should use
    // no more energy than feedback-off, and still hold the bound.
    Bench b;
    const double L = b.bound(AppId::Shore);
    const Trace t = b.trace(AppId::Shore, 0.4, 10000, 37);

    const SimResult with = b.runRubik(t, L, /*feedback=*/true);
    const SimResult without = b.runRubik(t, L, /*feedback=*/false);

    EXPECT_LE(with.coreActiveEnergy(), without.coreActiveEnergy() * 1.02);
    EXPECT_LE(with.tailLatency(0.95), L * 1.10);
    // Without feedback, Rubik's conservative estimates keep the tail
    // strictly under the bound (Fig. 9a's "Rubik (No Feedback)" curve).
    EXPECT_LE(without.tailLatency(0.95), L * 1.05);
}

TEST(RubikIntegration, TableRebuildsHappenPeriodically)
{
    Bench b;
    RubikConfig cfg;
    cfg.latencyBound = b.bound(AppId::Masstree);
    RubikController rubik(b.dvfs, cfg);
    const Trace t = b.trace(AppId::Masstree, 0.5, 6000, 41);
    const SimResult r = simulate(t, rubik, b.dvfs, b.pm);

    // ~ one rebuild per 100 ms of simulated time once warm.
    const double expected = r.simTime / cfg.updatePeriod;
    EXPECT_GT(static_cast<double>(rubik.tableRebuilds()), expected * 0.5);
    EXPECT_LT(static_cast<double>(rubik.tableRebuilds()), expected * 1.5);
    EXPECT_TRUE(rubik.warm());
}

TEST(RubikIntegration, SlowDvfsDegradesGracefully)
{
    // Sec. 5.5: with 130us transitions Rubik still meets the bound, at
    // reduced (but nonnegative) savings vs 4us transitions.
    Bench fast;
    DvfsModel slow_dvfs = DvfsModel::haswell(130e-6);
    PowerModel slow_pm(slow_dvfs);

    const double L = fast.bound(AppId::Masstree);
    const Trace t = fast.trace(AppId::Masstree, 0.4, 8000, 43);

    RubikConfig cfg;
    cfg.latencyBound = L;
    RubikController rubik(slow_dvfs, cfg);
    const SimResult slow = simulate(t, rubik, slow_dvfs, slow_pm);

    EXPECT_LE(slow.tailLatency(0.95), L * 1.12);

    const SimResult quick = fast.runRubik(t, L);
    // Slower DVFS can't save more energy than fast DVFS (same decisions,
    // higher effective latency of each change).
    EXPECT_GE(slow.coreActiveEnergy(), quick.coreActiveEnergy() * 0.9);
}

TEST(RubikIntegration, ZeroTransitionLatencyWorks)
{
    Bench b;
    DvfsModel instant = DvfsModel::haswell(0.0);
    PowerModel pm(instant);
    const double L = b.bound(AppId::Specjbb);
    const Trace t = b.trace(AppId::Specjbb, 0.4, 8000, 47);
    RubikConfig cfg;
    cfg.latencyBound = L;
    RubikController rubik(instant, cfg);
    const SimResult r = simulate(t, rubik, instant, pm);
    EXPECT_LE(r.tailLatency(0.95), L * 1.10);
}

TEST(RubikIntegration, ResetAllowsReuse)
{
    Bench b;
    const double L = b.bound(AppId::Masstree);
    RubikConfig cfg;
    cfg.latencyBound = L;
    RubikController rubik(b.dvfs, cfg);

    const Trace t = b.trace(AppId::Masstree, 0.4, 4000, 53);
    const SimResult r1 = simulate(t, rubik, b.dvfs, b.pm);
    const SimResult r2 = simulate(t, rubik, b.dvfs, b.pm);
    ASSERT_EQ(r1.completed.size(), r2.completed.size());
    for (std::size_t i = 0; i < r1.completed.size(); ++i) {
        EXPECT_NEAR(r1.completed[i].latency(), r2.completed[i].latency(),
                    1e-9);
    }
    EXPECT_NEAR(r1.coreActiveEnergy(), r2.coreActiveEnergy(), 1e-9);
}

TEST(RubikIntegration, FrequencyHistogramSkewsLowAtLowLoad)
{
    // Fig. 7b: at moderate load most busy time sits at low frequencies.
    Bench b;
    const double L = b.bound(AppId::Masstree);
    const Trace t = b.trace(AppId::Masstree, 0.3, 8000, 59);
    const SimResult r = b.runRubik(t, L);

    double low = 0.0;
    for (std::size_t i = 0; i < 5; ++i) // 0.8 .. 1.6 GHz
        low += r.core.freqResidency[i];
    EXPECT_GT(low, 0.5 * r.core.busyTime);
}

TEST(RubikIntegration, DelaysShortRequestsButHoldsTail)
{
    // Fig. 7a: Rubik shifts the *low* end of the latency CDF right
    // (short requests run slower) while the tail stays at the bound.
    Bench b;
    const double L = b.bound(AppId::Masstree);
    const Trace t = b.trace(AppId::Masstree, 0.5, 9000, 61);

    const SimResult rubik = b.runRubik(t, L);
    const ReplayResult fixed =
        replayFixed(t, b.dvfs.nominalFrequency(), b.pm);

    auto lat_rubik = rubik.latencies();
    auto lat_fixed = fixed.latencies;
    EXPECT_GT(percentile(lat_rubik, 0.25), percentile(lat_fixed, 0.25));
    EXPECT_LE(percentile(lat_rubik, 0.95), L * 1.10);
}

} // namespace
} // namespace rubik
