/**
 * @file
 * Fidelity suite for the distilled decision model (policies/distilled.h):
 * agreement with the exact controller on randomized queue-state grids
 * (training-like and held-out), bitwise round-trip stability of the
 * versioned model format, rejection of corrupt/truncated/mis-tagged
 * bytes, and the DistilledPolicy fallback/auto-retrain wiring.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/rubik_controller.h"
#include "policies/distilled.h"
#include "power/power_model.h"
#include "sim/core_engine.h"
#include "util/rng.h"
#include "util/units.h"

namespace rubik {
namespace {

/// Warm controller over a lognormal service profile (the micro_model
/// bench shape): 64 completions, then one periodic update builds the
/// table. Feedback off, so the internal target stays put.
RubikController
warmController(const DvfsModel &dvfs, const PowerModel &pm,
               uint64_t seed = 3)
{
    RubikConfig cfg;
    cfg.latencyBound = 1.0 * kMs;
    cfg.feedback = false;
    cfg.warmupSamples = 16;
    RubikController rubik(dvfs, cfg);
    CoreEngine core(dvfs, pm);
    Rng rng(seed);
    for (int i = 0; i < 64; ++i) {
        CompletedRequest done;
        done.computeCycles = rng.lognormal(13.0, 0.3);
        done.memoryTime = rng.lognormal(-9.0, 0.3);
        done.completionTime = i * 1e-4;
        rubik.onCompletion(done, core.view());
    }
    rubik.periodicUpdate(core.view());
    return rubik;
}

/// A synthetic queue state with FIFO-ordered (descending) ages.
struct Probe
{
    std::vector<double> arrivals;
    double now = 0.0;
    double elapsedCycles = 0.0;

    CoreView view(const DvfsModel &dvfs) const
    {
        CoreView v;
        v.now = now;
        v.frequency = dvfs.maxFrequency();
        v.elapsedCycles = elapsedCycles;
        v.count = arrivals.size();
        v.busy = true;
        v.arrivals = arrivals.data();
        v.dvfs = &dvfs;
        return v;
    }
};

std::vector<Probe>
makeProbes(uint64_t seed, double target, double maxRowBound,
           std::size_t count, std::size_t maxDepth)
{
    Rng rng(seed);
    std::vector<Probe> probes(count);
    for (Probe &p : probes) {
        p.now = 10.0 * target;
        p.elapsedCycles = rng.uniform(0.0, 1.5 * maxRowBound);
        const std::size_t depth =
            1 + static_cast<std::size_t>(rng.uniform(0.0, 1.0) *
                                         static_cast<double>(maxDepth));
        std::vector<double> ages(depth);
        for (double &a : ages)
            a = rng.uniform(0.0, 1.2 * target);
        std::sort(ages.begin(), ages.end(),
                  [](double a, double b) { return a > b; });
        p.arrivals.resize(depth);
        for (std::size_t i = 0; i < depth; ++i)
            p.arrivals[i] = p.now - ages[i];
    }
    return probes;
}

class DistillFidelity : public ::testing::Test
{
  protected:
    DistillFidelity()
        : dvfs(DvfsModel::haswell()), pm(dvfs),
          exact(warmController(dvfs, pm))
    {
    }

    DistilledModel train(DistilledConfig cfg = DistilledConfig{})
    {
        return DistilledModel::distill(exact, dvfs, cfg);
    }

    DvfsModel dvfs;
    PowerModel pm;
    RubikController exact;
};

TEST_F(DistillFidelity, GridAgreementAtLeast99Percent)
{
    const DistilledModel model = train();
    ASSERT_TRUE(model.trained());
    const auto probes =
        makeProbes(11, model.trainedTarget(),
                   model.rowBounds().back(), 20000, 16);
    std::size_t agree = 0, safe = 0, exactWithFallback = 0;
    for (const Probe &p : probes) {
        const CoreView v = p.view(dvfs);
        const double want = exact.selectFrequency(v);
        bool needExact = false;
        const double got = model.decide(v, &needExact);
        if (got == want)
            ++agree;
        if (needExact || got == want)
            ++exactWithFallback;
        if (got >= want * (1.0 - 1e-12))
            ++safe;
    }
    const double n = static_cast<double>(probes.size());
    // LUT alone: >= 99% exact agreement (acceptance bar).
    EXPECT_GE(static_cast<double>(agree) / n, 0.99);
    // With the ambiguity fallback the policy is exact by construction.
    EXPECT_EQ(exactWithFallback, probes.size());
    // The model may round up (waste a little energy) but never
    // undershoot the exact constraint.
    EXPECT_EQ(safe, probes.size());
}

TEST_F(DistillFidelity, DistillUnderPowerCapTrainsUncappedAndRestores)
{
    // Fleet runs set a cap on the policy before the table warms, so the
    // first auto-retrain distills from a capped controller. Training
    // must see the uncapped decision (the cap is re-applied at decide
    // time) and must leave the cap in place afterwards.
    const std::string uncappedBytes = train().serialize();
    exact.setPowerCap(3.0);
    const DistilledModel model = train();
    EXPECT_DOUBLE_EQ(exact.powerCap(), 3.0);
    EXPECT_EQ(model.serialize(), uncappedBytes);
}

TEST_F(DistillFidelity, HeldOutAgreementAtLeast99Percent)
{
    // A disjoint probe distribution: deeper queues, different seed.
    const DistilledModel model = train();
    const auto probes =
        makeProbes(1234567, model.trainedTarget(),
                   model.rowBounds().back(), 20000, 48);
    std::size_t agree = 0;
    for (const Probe &p : probes) {
        const CoreView v = p.view(dvfs);
        bool needExact = false;
        const double got = model.decide(v, &needExact);
        if (needExact || got == exact.selectFrequency(v))
            ++agree;
    }
    EXPECT_GE(static_cast<double>(agree) /
                  static_cast<double>(probes.size()),
              0.99);
}

TEST_F(DistillFidelity, ReducedLeafSetNeverUndershoots)
{
    DistilledConfig cfg;
    cfg.leaves = 4;
    const DistilledModel model = train(cfg);
    ASSERT_EQ(model.leafFrequencies().size(), 4u);
    // The leaf subset always contains the grid max, so rounding up
    // stays total.
    EXPECT_DOUBLE_EQ(model.leafFrequencies().back(),
                     dvfs.maxFrequency());
    const auto probes =
        makeProbes(7, model.trainedTarget(), model.rowBounds().back(),
                   5000, 16);
    for (const Probe &p : probes) {
        const CoreView v = p.view(dvfs);
        bool needExact = false;
        const double got = model.decide(v, &needExact);
        const double want = exact.selectFrequency(v);
        ASSERT_GE(got, want * (1.0 - 1e-12));
    }
}

TEST_F(DistillFidelity, RoundTripIsBitwiseIdentical)
{
    const DistilledModel model = train();
    const std::string bytes = model.serialize();
    const DistilledModel copy = DistilledModel::deserialize(bytes);
    // Re-serialization is byte-identical (stable format, no float
    // drift through the LUT rebuild).
    EXPECT_EQ(copy.serialize(), bytes);
    const auto probes =
        makeProbes(42, model.trainedTarget(), model.rowBounds().back(),
                   20000, 32);
    for (const Probe &p : probes) {
        const CoreView v = p.view(dvfs);
        bool a = false, b = false;
        const double da = model.decide(v, &a);
        const double db = copy.decide(v, &b);
        ASSERT_EQ(da, db); // bitwise: same doubles out
        ASSERT_EQ(a, b);   // and the same fallback verdicts
    }
}

TEST_F(DistillFidelity, SaveLoadRoundTripsThroughDisk)
{
    const DistilledModel model = train();
    const std::string path =
        ::testing::TempDir() + "/distill_roundtrip.rdtm";
    model.save(path);
    const DistilledModel loaded = DistilledModel::load(path);
    EXPECT_EQ(loaded.serialize(), model.serialize());
    std::remove(path.c_str());
}

TEST_F(DistillFidelity, RejectsCorruptTruncatedAndMistagged)
{
    const std::string bytes = train().serialize();

    // Every single-byte flip must be caught by the checksum (or the
    // magic/version check when the flip hits the header). Sample a
    // spread of positions instead of all of them for test speed.
    for (std::size_t pos = 0; pos < bytes.size();
         pos += 1 + bytes.size() / 97) {
        std::string bad = bytes;
        bad[pos] = static_cast<char>(bad[pos] ^ 0x5a);
        EXPECT_THROW(DistilledModel::deserialize(bad),
                     std::runtime_error)
            << "flip at " << pos;
    }

    // Truncations at every structural boundary.
    for (const std::size_t keep :
         {std::size_t(0), std::size_t(3), std::size_t(8),
          std::size_t(15), bytes.size() / 2, bytes.size() - 1}) {
        EXPECT_THROW(DistilledModel::deserialize(bytes.substr(0, keep)),
                     std::runtime_error)
            << "truncate to " << keep;
    }

    // Trailing garbage is not silently ignored.
    EXPECT_THROW(DistilledModel::deserialize(bytes + "x"),
                 std::runtime_error);

    // Wrong magic / wrong version, checksum fixed up or not.
    std::string magic = bytes;
    magic[0] = 'X';
    EXPECT_THROW(DistilledModel::deserialize(magic),
                 std::runtime_error);
    std::string version = bytes;
    version[4] = 99;
    EXPECT_THROW(DistilledModel::deserialize(version),
                 std::runtime_error);

    // Missing file.
    EXPECT_THROW(DistilledModel::load("/nonexistent/path/model.rdtm"),
                 std::runtime_error);
}

TEST_F(DistillFidelity, UntrainedModelAlwaysFallsBack)
{
    const DistilledModel model; // never trained
    EXPECT_FALSE(model.trained());
    const auto probes = makeProbes(5, 1e-3, 1e6, 100, 8);
    for (const Probe &p : probes) {
        bool needExact = false;
        model.decide(p.view(dvfs), &needExact);
        EXPECT_TRUE(needExact);
    }
}

TEST_F(DistillFidelity, DeeperThanTrainedQueueFallsBack)
{
    DistilledConfig cfg;
    cfg.maxPositions = 8;
    const DistilledModel model = train(cfg);
    const auto probes =
        makeProbes(9, model.trainedTarget(), model.rowBounds().back(),
                   50, 8);
    Probe deep = probes[0];
    deep.arrivals.assign(9, deep.now - 1e-4); // depth 9 > trained 8
    bool needExact = false;
    model.decide(deep.view(dvfs), &needExact);
    EXPECT_TRUE(needExact);
}

TEST_F(DistillFidelity, PolicyFallsBackToExactAndCounts)
{
    DistilledConfig cfg;
    cfg.ageBuckets = 64; // coarse: plenty of ambiguous states
    DistilledPolicy policy(train(cfg), exact, dvfs,
                           /*autoRetrain=*/false);
    const auto probes =
        makeProbes(21, policy.model().trainedTarget(),
                   policy.model().rowBounds().back(), 5000, 16);
    for (const Probe &p : probes) {
        const CoreView v = p.view(dvfs);
        const double got = policy.selectFrequency(v);
        // Fallback or not, the policy answer equals the exact one on
        // ambiguous states and a grid frequency everywhere.
        EXPECT_GE(got, dvfs.frequencies().front());
        EXPECT_LE(got, dvfs.maxFrequency());
    }
    EXPECT_GT(policy.fastDecisions(), 0u);
    EXPECT_GT(policy.fallbackDecisions(), 0u);
    EXPECT_EQ(policy.fastDecisions() + policy.fallbackDecisions(),
              probes.size());
}

TEST_F(DistillFidelity, AutoRetrainFollowsTableRebuilds)
{
    DistilledPolicy policy(DistilledModel(), exact, dvfs,
                           /*autoRetrain=*/true);
    EXPECT_FALSE(policy.model().trained());
    CoreEngine core(dvfs, pm);

    // No fresh completions -> the controller skips the rebuild
    // (minNewSamplesPerRebuild) -> no retrain either.
    policy.periodicUpdate(core.view());
    EXPECT_FALSE(policy.model().trained());
    EXPECT_EQ(policy.retrains(), 0u);

    // Fresh profile data + a periodic update -> table rebuild ->
    // exactly one retrain, and the model comes out trained.
    auto feed = [&](uint64_t seed, double at) {
        Rng rng(seed);
        for (int i = 0; i < 64; ++i) {
            CompletedRequest done;
            done.computeCycles = rng.lognormal(13.2, 0.4);
            done.memoryTime = rng.lognormal(-9.0, 0.3);
            done.completionTime = at + i * 1e-4;
            policy.onCompletion(done, core.view());
        }
    };
    feed(77, 1.0);
    uint64_t before = exact.tableRebuilds();
    policy.periodicUpdate(core.view());
    ASSERT_GT(exact.tableRebuilds(), before);
    EXPECT_TRUE(policy.model().trained());
    EXPECT_EQ(policy.retrains(), 1u);

    // No new rebuild -> the model is left alone.
    policy.periodicUpdate(core.view());
    EXPECT_EQ(policy.retrains(), 1u);

    // Another batch, another rebuild, another retrain.
    feed(78, 2.0);
    before = exact.tableRebuilds();
    policy.periodicUpdate(core.view());
    ASSERT_GT(exact.tableRebuilds(), before);
    EXPECT_EQ(policy.retrains(), 2u);
}

} // namespace
} // namespace rubik
