/**
 * @file
 * Figure 17 (extension): fleet-scale power capping. Sweeps fleet size
 * (up to ~10^4 Rubik-controlled cores) against global power budget
 * tightness and reports, per (cores, budget) cell, the fleet's worst
 * epoch tail latency, energy per request, peak aggregate power, and
 * how much of the fleet the coordinator had to cap.
 *
 * The shape to expect: with a slack budget (frac >= ~0.8 of nominal
 * core power) the coordinator never binds and the fleet matches the
 * uncapped run; as the budget tightens, water-filling first shaves
 * the surge epochs (capped_frac jumps while tails hold), then pushes
 * every core to a low frequency ceiling and tails blow through the
 * bound — the capacity-vs-latency cliff cluster operators size
 * budgets around. peak_power_w stays <= budget_w in every feasible
 * cell by construction (caps translate to frequency ceilings).
 *
 * Sharding: `--shard I/N --csv` emits only shard I's contiguous slice
 * of the (cores, budget) cell grid; the heading and table header
 * belong to cell 0, so concatenating the shard outputs in order
 * (`rubik_cli merge`) is byte-identical to the unsharded run. Every
 * cell is independent (the coordinator is open-loop), which is what
 * the CI fleet shard-determinism gate checks.
 */

#include "common.h"
#include "fleet/fleet_sim.h"
#include "runner/sweep_spec.h"
#include "util/units.h"

using namespace rubik;
using namespace rubik::bench;

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv, /*allow_shard=*/true);
    Platform plat;
    const double nominal_w =
        plat.power.coreActivePower(plat.dvfs.nominalFrequency(), 0.0);

    // Fleet sizes in cores (6-core machines) x budget as a fraction of
    // cores * nominal core power (0 = uncapped reference).
    const std::vector<int> sizes =
        opts.fast ? std::vector<int>{48, 96}
                  : std::vector<int>{96, 960, 10080};
    const std::vector<double> fracs =
        opts.fast ? std::vector<double>{0.0, 0.6, 0.9}
                  : std::vector<double>{0.0, 0.4, 0.6, 0.8, 1.0};
    const ShardRange range = shardRange(sizes.size() * fracs.size(),
                                        opts.shard, opts.numShards);

    if (range.begin == 0) {
        heading(opts,
                "Fig. 17: fleet-scale power capping (worst epoch per "
                "cell; budget = frac x cores x nominal core power)");
    }
    TablePrinter table({"cores", "budget_frac", "budget_w",
                        "worst_tail_ms", "tail_over_bound",
                        "energy_mj_per_req", "peak_power_w",
                        "peak_over_budget", "capped_frac", "shed_frac",
                        "groups", "feasible"},
                       opts.csv);
    table.setShowHeader(range.begin == 0);

    for (std::size_t ci = range.begin; ci < range.end; ++ci) {
        const int cores = sizes[ci / fracs.size()];
        const double frac = fracs[ci % fracs.size()];

        FleetConfig cfg;
        cfg.machines = cores / cfg.coresPerMachine;
        cfg.requestsPerEpoch = opts.numRequests(600);
        cfg.seed = opts.seed;
        cfg.budgetWatts = frac > 0.0 ? frac * cores * nominal_w : 0.0;
        const FleetResult r = runFleet(cfg, opts.jobs);

        double capped_max = 0.0;
        for (const FleetEpochResult &er : r.epochs)
            capped_max = std::max(capped_max, er.cappedFraction);

        table.addRow(
            {fmt("%.0f", static_cast<double>(cores)),
             fmt("%.2f", frac), fmt("%.1f", cfg.budgetWatts),
             fmt("%.3f", r.worstTail / kMs),
             fmt("%.3f", r.worstTail / r.bound),
             fmt("%.3f", r.energyPerRequest / kMj),
             fmt("%.1f", r.peakPower),
             fmt("%.3f", cfg.budgetWatts > 0.0
                             ? r.peakPower / cfg.budgetWatts
                             : 0.0),
             fmt("%.3f", capped_max), fmt("%.3f", r.shedFraction),
             fmt("%.0f", static_cast<double>(r.groupsSimulated)),
             fmt("%.0f", r.feasible ? 1.0 : 0.0)});
    }
    table.print();
    return 0;
}
