/**
 * @file
 * Extension: RubikBoost, the Rubik + Adrenaline combination the paper
 * proposes as future work (Sec. 5.2). Requests carry Adrenaline-style
 * class hints (long = above the 85th percentile of nominal service time);
 * RubikBoost profiles each class separately, so a known-short in-flight
 * request gets a tight c_0 instead of the mixture's pessimistic tail.
 *
 * Expectation: on class-structured apps (shore, specjbb, xapian) the
 * hybrid saves more power than plain Rubik at equal tail compliance,
 * and closes most of the remaining gap to AdrenalineOracle's oracular
 * per-request knowledge; on near-uniform apps (masstree) it changes
 * little.
 */

#include <functional>

#include "common.h"
#include "core/rubik_boost.h"
#include "core/rubik_controller.h"
#include "policies/adrenaline.h"
#include "policies/replay.h"
#include "runner/experiment_runner.h"
#include "sim/simulation.h"
#include "util/units.h"
#include "workloads/trace_gen.h"

using namespace rubik;
using namespace rubik::bench;

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    Platform plat;
    const double nominal = plat.dvfs.nominalFrequency();

    heading(opts, "Extension: Rubik+Adrenaline hybrid (core power "
                  "savings % over fixed 2.4 GHz; tail/bound in "
                  "parentheses)");
    TablePrinter table({"app", "load", "Rubik", "RubikBoost",
                        "AdrenalineOracle"},
                       opts.csv);

    const std::vector<AppId> ids = {AppId::Masstree, AppId::Shore,
                                    AppId::Specjbb, AppId::Xapian};
    const std::vector<double> loads = {0.3, 0.4, 0.5};
    ExperimentRunner runner(opts.jobs);

    // Phase 1: per-app bound and the 50%-load trace (reused by the
    // load == 0.5 cells).
    struct AppContext
    {
        AppProfile app;
        int n = 0;
        double bound = 0.0;
        Trace t50;
    };
    std::vector<std::function<AppContext()>> bound_jobs;
    for (AppId id : ids) {
        bound_jobs.push_back([&, id] {
            AppContext ctx;
            ctx.app = makeApp(id);
            ctx.n =
                opts.numRequests(std::max(ctx.app.paperRequests, 6000));
            ctx.t50 = generateLoadTrace(ctx.app, 0.5, ctx.n, nominal,
                                        opts.seed);
            ctx.bound = replayFixed(ctx.t50, nominal, plat.power)
                            .tailLatency(0.95);
            return ctx;
        });
    }
    const std::vector<AppContext> ctxs =
        runner.runBatch(std::move(bound_jobs));

    // Phase 2: one job per (app, load) cell, three schemes inside.
    std::vector<std::function<std::vector<std::string>()>> cell_jobs;
    for (std::size_t ai = 0; ai < ctxs.size(); ++ai) {
        for (double load : loads) {
            cell_jobs.push_back([&, ai,
                                 load]() -> std::vector<std::string> {
                const AppContext &ctx = ctxs[ai];
                Trace t = load == 0.5
                              ? ctx.t50
                              : generateLoadTrace(ctx.app, load, ctx.n,
                                                  nominal,
                                                  opts.seed + 1);
                annotateClasses(t, 0.85, nominal);
                const double fixed_energy =
                    replayFixed(t, nominal, plat.power)
                        .coreActiveEnergy;

                RubikConfig rcfg;
                rcfg.latencyBound = ctx.bound;
                RubikController rubik(plat.dvfs, rcfg);
                const SimResult plain =
                    simulate(t, rubik, plat.dvfs, plat.power);

                RubikBoostConfig bcfg;
                bcfg.base = rcfg;
                RubikBoostController boost(plat.dvfs, bcfg);
                const SimResult hybrid =
                    simulate(t, boost, plat.dvfs, plat.power);

                const auto adr = adrenalineOracle(t, ctx.bound,
                                                  plat.dvfs, plat.power,
                                                  nominal);

                auto cell = [&](double energy, double tail) {
                    return fmt("%.1f",
                               (1.0 - energy / fixed_energy) * 100) +
                           " (" + fmt("%.2f", tail / ctx.bound) + ")";
                };
                return {ctx.app.name, fmt("%.0f%%", load * 100),
                        cell(plain.coreActiveEnergy(),
                             plain.tailLatency(0.95)),
                        cell(hybrid.coreActiveEnergy(),
                             hybrid.tailLatency(0.95)),
                        cell(adr.replay.coreActiveEnergy,
                             adr.replay.tailLatency(0.95))};
            });
        }
    }
    for (auto &row : runner.runBatch(std::move(cell_jobs)))
        table.addRow(std::move(row));
    table.print();
    return 0;
}
