/**
 * @file
 * Table 1: Pearson correlation of end-to-end response latency with
 * service time, instantaneous QPS (5 ms window), and queue length at
 * arrival, for each app at 50% load.
 *
 * Paper's finding: queue length is strongly correlated everywhere
 * (0.63-0.94); service time only matters for variable-service apps
 * (shore, xapian, specjbb); instantaneous QPS is weak.
 */

#include <functional>

#include "common.h"
#include "runner/experiment_runner.h"
#include "sim/metrics.h"
#include "sim/simulation.h"
#include "stats/correlation.h"
#include "workloads/trace_gen.h"

using namespace rubik;
using namespace rubik::bench;

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    Platform plat;
    const double nominal = plat.dvfs.nominalFrequency();

    heading(opts, "Table 1: correlation of response latency with "
                  "service time / instantaneous QPS / queue length "
                  "(50% load)");
    TablePrinter table({"app", "service_time", "inst_qps", "queue_len"},
                       opts.csv);
    ExperimentRunner runner(opts.jobs);
    std::vector<std::function<std::vector<std::string>()>> jobs;
    for (AppId id : allApps()) {
        jobs.push_back([&, id]() -> std::vector<std::string> {
            const AppProfile app = makeApp(id);
            const int n =
                opts.numRequests(std::max(app.paperRequests, 6000));
            const Trace t =
                generateLoadTrace(app, 0.5, n, nominal, opts.seed);
            FixedFrequencyPolicy fixed(nominal);
            const SimResult sim =
                simulate(t, fixed, plat.dvfs, plat.power);

            const PerRequestSeries s = perRequestSeries(sim.completed);
            return {app.name,
                    fmt("%.2f", pearsonCorrelation(s.responseLatency,
                                                   s.serviceTime)),
                    fmt("%.2f", pearsonCorrelation(s.responseLatency,
                                                   s.instantaneousQps)),
                    fmt("%.2f", pearsonCorrelation(s.responseLatency,
                                                   s.queueLength))};
        });
    }
    for (auto &row : runner.runBatch(std::move(jobs)))
        table.addRow(std::move(row));
    table.print();
    return 0;
}
