/**
 * @file
 * Figure 16: datacenter power and server count, segregated vs RubikColoc,
 * as the latency-critical load varies from 10% to 60% (diurnal range).
 * All values are normalized to the segregated datacenter at 60% load,
 * with the batch-server contribution split out (the paper's hatching).
 *
 * Paper's shape: at 10% load RubikColoc uses ~43% less power and ~41%
 * fewer servers than the 60%-load baseline (31% less power than the
 * segregated datacenter at the same 10% load); even at 60% it saves ~17%
 * power / ~19% servers.
 */

#include <functional>

#include "common.h"
#include "coloc/datacenter.h"
#include "runner/experiment_runner.h"
#include "util/units.h"

using namespace rubik;
using namespace rubik::bench;

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    Platform plat;

    DatacenterConfig cfg;
    cfg.lcRequestsPerSim = opts.numRequests(3000);
    cfg.seed = opts.seed;

    // One job per LC load. DatacenterModel caches per-load pair
    // simulations internally, so each job gets its own instance;
    // evaluate() is deterministic in (config, load), making per-job
    // models equivalent to one warm serial model.
    const std::vector<double> loads = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
    ExperimentRunner runner(opts.jobs);
    std::vector<std::function<DatacenterEval()>> jobs;
    for (double load : loads) {
        jobs.push_back([&, load] {
            DatacenterModel dc(plat.dvfs, plat.power, cfg);
            return dc.evaluate(load);
        });
    }
    const std::vector<DatacenterEval> evals =
        runner.runBatch(std::move(jobs));

    // Normalization: segregated datacenter at 60% load.
    const DatacenterEval &base = evals.back();
    const double p0 = base.segregated.power;
    const double s0 = base.segregated.servers;

    heading(opts, "Fig. 16: normalized datacenter power and servers "
                  "(1.0 = segregated @ 60% load; batch share in "
                  "parentheses)");
    TablePrinter table({"lc_load", "seg_power", "coloc_power",
                        "seg_servers", "coloc_servers", "power_vs_seg",
                        "servers_vs_seg"},
                       opts.csv);

    for (std::size_t li = 0; li < loads.size(); ++li) {
        const double load = loads[li];
        const DatacenterEval &e = evals[li];
        table.addRow(
            {fmt("%.0f%%", load * 100),
             fmt("%.3f", e.segregated.power / p0) + " (" +
                 fmt("%.2f", e.segregated.batchPower / p0) + ")",
             fmt("%.3f", e.colocated.power / p0) + " (" +
                 fmt("%.2f", e.colocated.batchPower / p0) + ")",
             fmt("%.3f", e.segregated.servers / s0) + " (" +
                 fmt("%.2f", e.segregated.batchServers / s0) + ")",
             fmt("%.3f", e.colocated.servers / s0) + " (" +
                 fmt("%.2f", e.colocated.batchServers / s0) + ")",
             fmt("%.1f%%",
                 (1.0 - e.colocated.power / e.segregated.power) * 100),
             fmt("%.1f%%", (1.0 - e.colocated.servers /
                                      e.segregated.servers) *
                               100)});
    }
    table.print();
    return 0;
}
