#ifndef RUBIK_BENCH_COMMON_H
#define RUBIK_BENCH_COMMON_H

/**
 * @file
 * Shared infrastructure for the experiment binaries in bench/.
 *
 * Each bench binary regenerates one table or figure from the paper as an
 * aligned text table (default) or CSV (--csv). --requests N scales the
 * per-simulation request count; --fast quarters it for smoke runs. Seeds
 * are fixed, so every run of a binary reproduces identical numbers.
 */

#include <string>
#include <vector>

#include "power/dvfs_model.h"
#include "power/power_model.h"
#include "sim/sim_options.h"
#include "workloads/apps.h"

namespace rubik::bench {

/// Parsed command-line options shared by all bench binaries.
struct Options
{
    bool csv = false;
    int requests = 0;    ///< 0: per-bench default.
    bool fast = false;   ///< Quarter the workload for smoke runs.
    uint64_t seed = 42;
    int jobs = 0;        ///< Worker threads; 0: hardware default.
    int shard = 0;       ///< --shard I/N: emit only shard I's cells.
    int numShards = 1;
    std::string backend = "local"; ///< --backend execution backend.
    int shards = 1;                ///< --shards: dispatch width.
    std::string traceCache;        ///< --trace-cache directory.
    std::string cacheCap;          ///< --cache-cap size (LRU cap).
    /// --fault: deterministic fault-injection spec (runner/fault.h),
    /// armed in this process and exported via RUBIK_FAULT so
    /// dispatched shard children inherit it.
    std::string fault;
    /// Simulation options for PolicyRunRequest::options; --simd lands
    /// in sim.numerics.simd and is applied process-wide by
    /// parseOptions when given (defaults leave RUBIK_SIMD in charge).
    SimOptions sim;

    /// Effective request count given a bench default.
    int numRequests(int bench_default) const;
};

/**
 * Parse argv; prints usage and exits on unknown flags. `allow_shard`
 * marks benches that implement `--shard I/N` cell partitioning; the
 * others reject the flag instead of silently emitting full output.
 *
 * Backend dispatch: `--backend subprocess|command:<tmpl> --shards N`
 * makes parseOptions re-run this binary once per shard (appending
 * `--shard I/N` to the original arguments, minus the backend flags),
 * merge the shard CSVs in order onto stdout, and exit — so every
 * shard-capable bench is backend-agnostic with no per-bench code.
 * `--trace-cache DIR` enables the shared on-disk trace cache (also
 * honoured by each child, which inherits the flag), so concurrent
 * shard processes generate each common trace exactly once.
 * `--cache-cap SIZE` bounds that cache with LRU eviction (enforced
 * after writes and again when the bench exits, so a warm run still
 * converges an over-cap store).
 */
Options parseOptions(int argc, char **argv, bool allow_shard = false);

/**
 * Aligned-column table printer with optional CSV mode.
 */
class TablePrinter
{
  public:
    TablePrinter(std::vector<std::string> headers, bool csv);

    void addRow(std::vector<std::string> cells);

    /**
     * Suppress the header row (CSV mode only). Sharded benches use
     * this so a shard that continues another shard's table emits rows
     * that concatenate byte-identically with it.
     */
    void setShowHeader(bool show) { showHeader_ = show; }

    /// Render everything to stdout.
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
    bool csv_;
    bool showHeader_ = true;
};

/// printf-style float formatting into std::string.
std::string fmt(const char *format, double value);

/// Print a section heading (suppressed in CSV mode prints a comment).
void heading(const Options &opts, const std::string &title);

/// The simulated CMP (Table 2): Haswell-like DVFS + calibrated power.
struct Platform
{
    DvfsModel dvfs;
    PowerModel power;

    explicit Platform(double transition_latency = 4e-6)
        : dvfs(DvfsModel::haswell(transition_latency)), power(dvfs)
    {
    }
};

} // namespace rubik::bench

#endif // RUBIK_BENCH_COMMON_H
