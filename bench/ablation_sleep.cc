/**
 * @file
 * Ablation: deep-sleep states vs tail latency (the Sec. 2.1 background
 * claim that deep CPU sleep states hurt tail latency because they flush
 * microarchitectural state and wake slowly, while shallow states save
 * little power).
 *
 * We sweep the C3 entry threshold and wake (state-refill) latency and
 * report the tail and the full-system power at 30% load under a fixed
 * nominal frequency — isolating the sleep effect from DVFS.
 */

#include <functional>

#include "common.h"
#include "runner/experiment_runner.h"
#include "sim/simulation.h"
#include "util/units.h"
#include "workloads/trace_gen.h"

using namespace rubik;
using namespace rubik::bench;

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    const DvfsModel dvfs = DvfsModel::haswell();
    const double nominal = dvfs.nominalFrequency();

    heading(opts, "Ablation: sleep-state policy vs tail latency and "
                  "full-system power (masstree @ 30%, fixed 2.4 GHz)");
    TablePrinter table({"c3_entry", "wake_latency", "tail_ms",
                        "tail_vs_no_sleep", "system_W"},
                       opts.csv);

    const AppProfile app = makeApp(AppId::Masstree);
    const int n = opts.numRequests(9000);
    const Trace t = generateLoadTrace(app, 0.3, n, nominal, opts.seed);

    struct Case
    {
        double entry;
        double wake;
    };
    const std::vector<Case> cases = {
        {1.0, 0.0},       // never sleeps (C1 only) — the reference
        {300e-6, 0.0},    // paper-style: C3 for power, instant wake
        {100e-6, 10e-6},  // eager C3, fast wake
        {300e-6, 30e-6},  // Haswell-C3-like wake
        {300e-6, 100e-6}, // C6-like deep sleep
    };

    // One job per sleep configuration; the shared trace is read-only.
    struct CaseResult
    {
        double tail = 0.0;
        double systemW = 0.0;
    };
    ExperimentRunner runner(opts.jobs);
    std::vector<std::function<CaseResult()>> jobs;
    for (const auto &c : cases) {
        jobs.push_back([&, c] {
            PowerModel::Params params;
            params.c3EntryThreshold = c.entry;
            const PowerModel pm(dvfs, params);

            FixedFrequencyPolicy fixed(nominal);
            SimConfig scfg;
            scfg.wakeLatency = c.wake;
            const SimResult r = simulate(t, fixed, dvfs, pm, scfg);

            CaseResult res;
            res.tail = r.tailLatency(0.95);
            res.systemW =
                systemEnergy(r, pm, pm.params().numCores).total() /
                r.simTime;
            return res;
        });
    }
    const std::vector<CaseResult> results =
        runner.runBatch(std::move(jobs));

    // First row (C1 only) is the tail-latency reference.
    const double baseline_tail = results[0].tail;
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const auto &c = cases[i];
        table.addRow(
            {c.entry >= 1.0 ? "never" : fmt("%.0f us", c.entry / kUs),
             fmt("%.0f us", c.wake / kUs),
             fmt("%.3f", results[i].tail / kMs),
             fmt("%+.1f%%", (results[i].tail / baseline_tail - 1.0) * 100),
             fmt("%.1f", results[i].systemW)});
    }
    table.print();
    return 0;
}
