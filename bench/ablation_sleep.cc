/**
 * @file
 * Ablation: deep-sleep states vs tail latency (the Sec. 2.1 background
 * claim that deep CPU sleep states hurt tail latency because they flush
 * microarchitectural state and wake slowly, while shallow states save
 * little power).
 *
 * We sweep the C3 entry threshold and wake (state-refill) latency and
 * report the tail and the full-system power at 30% load under a fixed
 * nominal frequency — isolating the sleep effect from DVFS.
 */

#include "common.h"
#include "sim/simulation.h"
#include "util/units.h"
#include "workloads/trace_gen.h"

using namespace rubik;
using namespace rubik::bench;

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    const DvfsModel dvfs = DvfsModel::haswell();
    const double nominal = dvfs.nominalFrequency();

    heading(opts, "Ablation: sleep-state policy vs tail latency and "
                  "full-system power (masstree @ 30%, fixed 2.4 GHz)");
    TablePrinter table({"c3_entry", "wake_latency", "tail_ms",
                        "tail_vs_no_sleep", "system_W"},
                       opts.csv);

    const AppProfile app = makeApp(AppId::Masstree);
    const int n = opts.numRequests(9000);
    const Trace t = generateLoadTrace(app, 0.3, n, nominal, opts.seed);

    struct Case
    {
        double entry;
        double wake;
    };
    const std::vector<Case> cases = {
        {1.0, 0.0},       // never sleeps (C1 only) — the reference
        {300e-6, 0.0},    // paper-style: C3 for power, instant wake
        {100e-6, 10e-6},  // eager C3, fast wake
        {300e-6, 30e-6},  // Haswell-C3-like wake
        {300e-6, 100e-6}, // C6-like deep sleep
    };

    double baseline_tail = 0.0;
    for (const auto &c : cases) {
        PowerModel::Params params;
        params.c3EntryThreshold = c.entry;
        const PowerModel pm(dvfs, params);

        FixedFrequencyPolicy fixed(nominal);
        SimConfig scfg;
        scfg.wakeLatency = c.wake;
        const SimResult r = simulate(t, fixed, dvfs, pm, scfg);

        const double tail = r.tailLatency(0.95);
        if (baseline_tail == 0.0)
            baseline_tail = tail; // first row is the C1-only reference
        const double system_w =
            systemEnergy(r, pm, pm.params().numCores).total() / r.simTime;
        table.addRow(
            {c.entry >= 1.0 ? "never" : fmt("%.0f us", c.entry / kUs),
             fmt("%.0f us", c.wake / kUs), fmt("%.3f", tail / kMs),
             fmt("%+.1f%%", (tail / baseline_tail - 1.0) * 100),
             fmt("%.1f", system_w)});
    }
    table.print();
    return 0;
}
