/**
 * @file
 * Figure 1: Rubik vs StaticOracle on masstree.
 *
 *  (a) Core energy per request at 30/40/50% load — Rubik's sub-millisecond
 *      adaptation beats the best static frequency by up to ~23%.
 *  (b) Response to a 30% -> 50% load step at t = 1 s: input load, tail
 *      latency over a rolling 200 ms window, and Rubik's frequency choices
 *      over time. StaticOracle (tuned for 30%) misses the bound after the
 *      step; Rubik holds it flat.
 */

#include <cstdio>
#include <functional>

#include "common.h"
#include "core/rubik_controller.h"
#include "policies/replay.h"
#include "policies/static_oracle.h"
#include "runner/experiment_runner.h"
#include "sim/metrics.h"
#include "sim/simulation.h"
#include "util/units.h"
#include "workloads/trace_gen.h"

using namespace rubik;
using namespace rubik::bench;

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    Platform plat;
    const AppProfile app = makeApp(AppId::Masstree);
    const double nominal = plat.dvfs.nominalFrequency();
    const int n = opts.numRequests(9000);

    // Latency bound: fixed-frequency tail at 50% load (Sec. 5.2).
    const Trace t50 = generateLoadTrace(app, 0.5, n, nominal, opts.seed);
    const double bound =
        replayFixed(t50, nominal, plat.power).tailLatency(0.95);

    heading(opts, "Fig. 1a: masstree core energy per request (mJ/req)");
    TablePrinter table({"load", "StaticOracle", "Rubik", "savings"},
                       opts.csv);
    ExperimentRunner runner(opts.jobs);
    std::vector<std::function<std::vector<std::string>()>> jobs;
    for (double load : {0.3, 0.4, 0.5}) {
        jobs.push_back([&, load]() -> std::vector<std::string> {
            const Trace t =
                generateLoadTrace(app, load, n, nominal, opts.seed + 1);
            const auto so =
                staticOracle(t, bound, 0.95, plat.dvfs, plat.power);

            RubikConfig rcfg;
            rcfg.latencyBound = bound;
            RubikController rubik(plat.dvfs, rcfg);
            const SimResult rr =
                simulate(t, rubik, plat.dvfs, plat.power);

            const double so_mj = so.replay.energyPerRequest() / kMj;
            const double rubik_mj = rr.coreEnergyPerRequest() / kMj;
            return {fmt("%.0f%%", load * 100), fmt("%.3f", so_mj),
                    fmt("%.3f", rubik_mj),
                    fmt("%.1f%%", (1.0 - rubik_mj / so_mj) * 100)};
        });
    }
    for (auto &row : runner.runBatch(std::move(jobs)))
        table.addRow(std::move(row));
    table.print();

    heading(opts,
            "Fig. 1b: response to a 30%->50% load step at t=1s "
            "(tail over rolling 200ms)");
    const Trace step = generateSteppedTrace(app, {{0.0, 0.3}, {1.0, 0.5}},
                                            2.4, nominal, opts.seed + 2);

    // The two step runs are independent; run them as one batch.
    // StaticOracle is tuned for the pre-step 30% load (it cannot
    // re-tune).
    struct StaticStep
    {
        double frequency = 0.0;
        ReplayResult replay;
    };
    auto static_future = runner.submit([&] {
        const Trace t30 =
            generateLoadTrace(app, 0.3, n, nominal, opts.seed + 3);
        const auto so30 =
            staticOracle(t30, bound, 0.95, plat.dvfs, plat.power);
        return StaticStep{so30.frequency,
                          replayFixed(step, so30.frequency,
                                      plat.power)};
    });
    auto rubik_future = runner.submit([&] {
        RubikConfig rcfg;
        rcfg.latencyBound = bound;
        RubikController rubik(plat.dvfs, rcfg);
        SimConfig scfg;
        scfg.recordTimeline = true;
        return simulate(step, rubik, plat.dvfs, plat.power, scfg);
    });
    const StaticStep static_result = static_future.get();
    const double so30_frequency = static_result.frequency;
    const ReplayResult &so_step = static_result.replay;
    const SimResult rubik_step = rubik_future.get();

    std::vector<CompletedRequest> so_completed;
    for (std::size_t i = 0; i < step.size(); ++i) {
        CompletedRequest c;
        c.arrivalTime = step[i].arrivalTime;
        c.startTime = step[i].arrivalTime;
        c.completionTime = step[i].arrivalTime + so_step.latencies[i];
        so_completed.push_back(c);
    }
    const auto so_tail =
        rollingTailLatency(so_completed, 0.2, 0.95, 0.1);
    const auto rubik_tail =
        rollingTailLatency(rubik_step.completed, 0.2, 0.95, 0.1);

    // Mean Rubik frequency inside each 100 ms sample window.
    auto mean_freq_at = [&](double t_end) {
        const auto &tl = rubik_step.freqTimeline;
        double acc = 0.0, covered = 0.0;
        const double t_begin = t_end - 0.1;
        for (std::size_t i = 0; i < tl.size(); ++i) {
            const double seg_start = std::max(tl[i].first, t_begin);
            const double seg_end = std::min(
                i + 1 < tl.size() ? tl[i + 1].first : t_end, t_end);
            if (seg_end <= seg_start)
                continue;
            acc += tl[i].second * (seg_end - seg_start);
            covered += seg_end - seg_start;
        }
        return covered > 0 ? acc / covered : 0.0;
    };

    TablePrinter series({"time_s", "load", "static_tail_ms",
                         "rubik_tail_ms", "bound_ms", "rubik_freq_GHz"},
                        opts.csv);
    for (std::size_t i = 0; i < rubik_tail.size(); ++i) {
        const double t = rubik_tail[i].time;
        const double load = t < 1.0 ? 0.3 : 0.5;
        const double st =
            i < so_tail.size() ? so_tail[i].value : 0.0;
        series.addRow({fmt("%.1f", t), fmt("%.0f%%", load * 100),
                       fmt("%.3f", st / kMs),
                       fmt("%.3f", rubik_tail[i].value / kMs),
                       fmt("%.3f", bound / kMs),
                       fmt("%.2f", mean_freq_at(t) / kGHz)});
    }
    series.print();

    std::printf("\nStaticOracle@30%% frequency: %.1f GHz; bound %.3f ms\n",
                so30_frequency / kGHz, bound / kMs);
    return 0;
}
