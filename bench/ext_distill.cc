/**
 * @file
 * Extension: distillation accuracy vs speed (ROADMAP item 1, the
 * serve daemon's fast path).
 *
 * The exact Rubik decision walks every queued request and divides tail
 * cycles by remaining slack (Eq. 2) — tens of nanoseconds. The
 * distilled model replaces it with one quantized age-bucket lookup per
 * request. This bench sweeps the two model-size knobs — decision
 * leaves (allowed output frequencies) and age buckets (threshold
 * quantization) — and reports, per shape:
 *
 *   - training time and resident LUT size;
 *   - agreement with the exact controller on a randomized held-out
 *     grid of queue states (LUT alone, and with the ambiguity-band
 *     fallback which restores exactness by construction);
 *   - the fraction of states marked ambiguous (= exact fallback rate);
 *   - safety (distilled decision >= exact decision: the model may only
 *     round up, never undershoot the bound);
 *   - measured per-decision latency of the LUT path.
 *
 * A second table widens the fallback band at a fixed shape, trading
 * fast-path hit rate for guaranteed agreement margin.
 */

#include <algorithm>
#include <ctime>
#include <vector>

#include "common.h"
#include "core/rubik_controller.h"
#include "policies/distilled.h"
#include "policies/replay.h"
#include "sim/simulation.h"
#include "util/rng.h"
#include "util/units.h"
#include "workloads/trace_gen.h"

using namespace rubik;
using namespace rubik::bench;

namespace {

double
nowNs()
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<double>(ts.tv_sec) * 1e9 +
           static_cast<double>(ts.tv_nsec);
}

/// One synthetic queue state: positions with descending request ages
/// (FIFO order), a random elapsed-cycles row probe, no power cap.
struct Probe
{
    std::vector<double> arrivals;
    double now = 0.0;
    double elapsedCycles = 0.0;

    CoreView view(const DvfsModel &dvfs) const
    {
        CoreView v;
        v.now = now;
        v.frequency = dvfs.maxFrequency();
        v.elapsedCycles = elapsedCycles;
        v.count = arrivals.size();
        v.busy = true;
        v.arrivals = arrivals.data();
        v.dvfs = &dvfs;
        return v;
    }
};

std::vector<Probe>
makeProbes(Rng &rng, double target, double maxRowBound,
           std::size_t count, std::size_t maxDepth)
{
    std::vector<Probe> probes(count);
    for (Probe &p : probes) {
        p.now = 10.0 * target;
        p.elapsedCycles = rng.uniform(0.0, 1.5 * maxRowBound);
        const std::size_t depth =
            1 + static_cast<std::size_t>(rng.uniform(0.0, 1.0) *
                                         static_cast<double>(maxDepth));
        std::vector<double> ages(depth);
        for (double &a : ages)
            a = rng.uniform(0.0, 1.2 * target);
        // FIFO: position 0 is the oldest request.
        std::sort(ages.begin(), ages.end(),
                  [](double a, double b) { return a > b; });
        p.arrivals.resize(depth);
        for (std::size_t i = 0; i < depth; ++i)
            p.arrivals[i] = p.now - ages[i];
    }
    return probes;
}

/// Round an exact grid decision up into the model's leaf set — the
/// best any leaf-restricted policy can do, so agreement is measured
/// against it rather than against unreachable frequencies.
double
leafRound(const DistilledModel &model, double frequency)
{
    for (const double leaf : model.leafFrequencies()) {
        if (leaf >= frequency * (1.0 - 1e-12))
            return leaf;
    }
    return model.leafFrequencies().back();
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    Platform plat;
    const double nominal = plat.dvfs.nominalFrequency();
    const int requests = opts.numRequests(6000);

    // Warm one exact controller; every model distills from it.
    const AppProfile app = makeApp(AppId::Masstree);
    Trace trace =
        generateLoadTrace(app, 0.4, requests, nominal, opts.seed);
    annotateClasses(trace, 0.85, nominal);
    const Trace t50 =
        generateLoadTrace(app, 0.5, requests, nominal, opts.seed);
    const double bound =
        replayFixed(t50, nominal, plat.power).tailLatency(0.95);
    RubikConfig rc;
    rc.latencyBound = bound;
    rc.feedback = false; // constant internal target (serve-mode choice)
    RubikController exact(plat.dvfs, rc);
    simulate(trace, exact, plat.dvfs, plat.power);

    const double target = exact.internalTarget();
    Rng rng(opts.seed + 17);
    const std::size_t kProbes = opts.fast ? 4096 : 16384;

    struct Shape
    {
        std::size_t leaves;
        std::size_t ageBuckets;
        std::size_t band;
    };
    std::vector<Shape> shapes;
    for (const std::size_t leaves : {std::size_t(0), std::size_t(8),
                                     std::size_t(4), std::size_t(2)})
        for (const std::size_t buckets :
             {std::size_t(4096), std::size_t(1024), std::size_t(256)})
            shapes.push_back({leaves, buckets, 0});
    for (const std::size_t band :
         {std::size_t(1), std::size_t(2), std::size_t(4)})
        shapes.push_back({0, 4096, band});

    heading(opts,
            "Extension: distilled decision model — leaves x age "
            "buckets (band 0), then fallback-band sweep at full "
            "grid x 4096, vs agreement and per-decision ns "
            "(masstree @ 40% load, exact Rubik as teacher)");
    TablePrinter table({"leaves", "age_buckets", "band", "train_ms",
                        "lut_kb", "agree_lut", "agree_fb", "ambiguous",
                        "safe", "decide_ns"},
                       opts.csv);

    double exactNs = 0.0;
    for (std::size_t si = 0; si < shapes.size(); ++si) {
        const Shape &shape = shapes[si];
        DistilledConfig dc;
        dc.leaves = shape.leaves;
        dc.ageBuckets = shape.ageBuckets;
        dc.fallbackBand = shape.band;

        const double t0 = nowNs();
        const DistilledModel model =
            DistilledModel::distill(exact, plat.dvfs, dc);
        const double trainMs = (nowNs() - t0) * 1e-6;

        const double maxRowBound = model.rowBounds().back();
        const std::vector<Probe> probes = makeProbes(
            rng, target, maxRowBound, kProbes, dc.maxPositions / 4);

        std::size_t agreeLut = 0, agreeFb = 0, ambiguous = 0, safe = 0;
        for (const Probe &p : probes) {
            const CoreView v = p.view(plat.dvfs);
            const double want = exact.selectFrequency(v);
            bool needExact = false;
            const double got = model.decide(v, &needExact);
            if (got == leafRound(model, want))
                ++agreeLut;
            if (needExact) {
                ++ambiguous;
                ++agreeFb; // fallback answers with `want` itself
            } else if (got == leafRound(model, want)) {
                ++agreeFb;
            }
            if (got >= want * (1.0 - 1e-12))
                ++safe;
        }

        // Time the LUT path over the probe set (min of 5 sweeps).
        double bestNs = 1e30;
        for (int rep = 0; rep < 5; ++rep) {
            bool sink = false;
            double acc = 0.0;
            const double s0 = nowNs();
            for (const Probe &p : probes)
                acc += model.decide(p.view(plat.dvfs), &sink);
            const double per =
                (nowNs() - s0) / static_cast<double>(probes.size());
            if (per < bestNs && acc > 0.0)
                bestNs = per;
        }
        if (si == 0) {
            // Reference: the exact controller on the same probes.
            double bestExact = 1e30;
            for (int rep = 0; rep < 5; ++rep) {
                double acc = 0.0;
                const double s0 = nowNs();
                for (const Probe &p : probes)
                    acc += exact.selectFrequency(p.view(plat.dvfs));
                const double per = (nowNs() - s0) /
                                   static_cast<double>(probes.size());
                if (per < bestExact && acc > 0.0)
                    bestExact = per;
            }
            exactNs = bestExact;
        }

        const double n = static_cast<double>(probes.size());
        table.addRow(
            {shape.leaves ? std::to_string(shape.leaves) : "full",
             std::to_string(shape.ageBuckets),
             std::to_string(shape.band), fmt("%.1f", trainMs),
             fmt("%.0f", static_cast<double>(model.lutBytes()) / 1024),
             fmt("%.4f", static_cast<double>(agreeLut) / n),
             fmt("%.4f", static_cast<double>(agreeFb) / n),
             fmt("%.4f", static_cast<double>(ambiguous) / n),
             fmt("%.4f", static_cast<double>(safe) / n),
             fmt("%.2f", bestNs)});
    }
    table.print();
    heading(opts, "Exact controller on the same probe set: " +
                      fmt("%.2f", exactNs) + " ns/decision");
    return 0;
}
