/**
 * @file
 * Table 3: latency-critical application configurations, extended with
 * the measured service-time statistics of this reproduction's synthetic
 * models (so the substitution documented in DESIGN.md is auditable).
 */

#include <algorithm>
#include <cmath>

#include "common.h"
#include "stats/percentile.h"
#include "util/rng.h"
#include "util/units.h"
#include "workloads/trace_gen.h"

using namespace rubik;
using namespace rubik::bench;

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    Platform plat;

    heading(opts, "Table 3: application workloads "
                  "(service-time stats at 2.4 GHz)");
    TablePrinter table({"app", "workload", "requests", "mean_ms",
                        "p50_ms", "p95_ms", "cv", "mem_frac"},
                       opts.csv);
    for (AppId id : allApps()) {
        const AppProfile app = makeApp(id);
        Rng rng(opts.seed);
        std::vector<double> samples;
        for (int i = 0; i < 50000; ++i)
            samples.push_back(app.serviceTime->sample(rng));
        const double m = mean(samples);
        const double cv = std::sqrt(variance(samples)) / m;
        table.addRow({app.name, app.workloadConfig,
                      fmt("%.0f", app.paperRequests), fmt("%.3f", m / kMs),
                      fmt("%.3f", percentile(samples, 0.5) / kMs),
                      fmt("%.3f", percentile(samples, 0.95) / kMs),
                      fmt("%.2f", cv), fmt("%.2f", app.memFraction)});
    }
    table.print();
    return 0;
}
