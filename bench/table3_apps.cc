/**
 * @file
 * Table 3: latency-critical application configurations, extended with
 * the measured service-time statistics of this reproduction's synthetic
 * models (so the substitution documented in DESIGN.md is auditable).
 */

#include <algorithm>
#include <cmath>
#include <functional>

#include "common.h"
#include "runner/experiment_runner.h"
#include "stats/percentile.h"
#include "util/rng.h"
#include "util/units.h"
#include "workloads/trace_gen.h"

using namespace rubik;
using namespace rubik::bench;

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    Platform plat;

    heading(opts, "Table 3: application workloads "
                  "(service-time stats at 2.4 GHz)");
    TablePrinter table({"app", "workload", "requests", "mean_ms",
                        "p50_ms", "p95_ms", "cv", "mem_frac"},
                       opts.csv);
    ExperimentRunner runner(opts.jobs);
    std::vector<std::function<std::vector<std::string>()>> jobs;
    for (AppId id : allApps()) {
        jobs.push_back([&, id]() -> std::vector<std::string> {
            const AppProfile app = makeApp(id);
            Rng rng(opts.seed);
            std::vector<double> samples;
            for (int i = 0; i < 50000; ++i)
                samples.push_back(app.serviceTime->sample(rng));
            const double m = mean(samples);
            const double cv = std::sqrt(variance(samples)) / m;
            return {app.name, app.workloadConfig,
                    fmt("%.0f", app.paperRequests), fmt("%.3f", m / kMs),
                    fmt("%.3f", percentile(samples, 0.5) / kMs),
                    fmt("%.3f", percentile(samples, 0.95) / kMs),
                    fmt("%.2f", cv), fmt("%.2f", app.memFraction)};
        });
    }
    for (auto &row : runner.runBatch(std::move(jobs)))
        table.addRow(std::move(row));
    table.print();
    return 0;
}
