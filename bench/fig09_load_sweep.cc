/**
 * @file
 * Figure 9: trace-driven characterization. For each app and load
 * (10%..90%), tail latency (9a) and core energy per request (9b) under:
 * fixed nominal frequency, StaticOracle, DynamicOracle, Rubik without
 * feedback, and Rubik.
 *
 * Paper's shape: fixed-frequency tail explodes with load; oracles hold a
 * flat tail to ~50% (the bound is unachievable beyond — shaded region);
 * DynamicOracle saves 20-45% of StaticOracle's energy at 50%; Rubik
 * captures most of that for tight-service apps, and Rubik-without-
 * feedback runs slightly conservative (lower tail than necessary).
 *
 * Sweep execution: the 5 apps x 9 loads grid is 45 independent jobs run
 * through ExperimentRunner; tables are emitted in submission order, so
 * the output is byte-identical to the old serial loop.
 *
 * Sharding: `--shard I/N --csv` runs only shard I's contiguous slice of
 * the (app, load) cell grid and emits exactly that slice's bytes — an
 * app's heading and table header belong to its first cell. Each shard
 * recomputes the latency bounds of the apps it touches (bounds depend
 * only on (app, seed)), so concatenating the N shard outputs in order
 * (`rubik_cli merge`) is byte-identical to the unsharded run.
 *
 * Traces come from the process-wide TraceStore, so `--backend
 * subprocess --shards N --trace-cache DIR` dispatches the shards as
 * concurrent child processes that generate each shared trace (the
 * bound traces especially) exactly once between them.
 */

#include <map>

#include "common.h"
#include "core/rubik_controller.h"
#include "policies/dynamic_oracle.h"
#include "policies/replay.h"
#include "policies/static_oracle.h"
#include "runner/experiment_runner.h"
#include "runner/sweep_spec.h"
#include "sim/simulation.h"
#include "util/units.h"
#include "workloads/trace_store.h"

using namespace rubik;
using namespace rubik::bench;

namespace {

/// Per-app inputs shared by that app's nine load cells.
struct AppContext
{
    AppProfile app;
    int n = 0;
    double bound = 0.0;
};

/// One (app, load) cell: tail latency and energy/request per scheme.
struct Cell
{
    double tail[5] = {};   // Fixed, StaticOracle, DynamicOracle,
    double energy[5] = {}; // Rubik_noFB, Rubik.
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv, /*allow_shard=*/true);
    Platform plat;
    const double nominal = plat.dvfs.nominalFrequency();
    ExperimentRunner runner(opts.jobs);

    const std::vector<AppId> apps = allApps();
    const std::vector<double> loads = {0.1, 0.2, 0.3, 0.4, 0.5,
                                       0.6, 0.7, 0.8, 0.9};
    const ShardRange range = shardRange(apps.size() * loads.size(),
                                        opts.shard, opts.numShards);

    // Apps with at least one cell in this shard (all of them when
    // unsharded); cells are app-major, so the set is contiguous.
    std::vector<std::size_t> owned_apps;
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        const std::size_t first = ai * loads.size();
        if (first < range.end && first + loads.size() > range.begin)
            owned_apps.push_back(ai);
    }

    // Phase 1: per-app latency bound from the 50%-load trace.
    std::vector<std::function<AppContext()>> bound_jobs;
    for (std::size_t ai : owned_apps) {
        const AppId id = apps[ai];
        bound_jobs.push_back([&, id] {
            AppContext ctx;
            ctx.app = makeApp(id);
            ctx.n = opts.numRequests(std::max(ctx.app.paperRequests, 5000));
            const auto t50 = globalTraceStore().loadTrace(
                ctx.app, 0.5, ctx.n, nominal, opts.seed);
            ctx.bound = replayFixed(*t50, nominal, plat.power)
                            .tailLatency(0.95);
            return ctx;
        });
    }
    std::map<std::size_t, AppContext> ctxs;
    {
        const std::vector<AppContext> batch =
            runner.runBatch(std::move(bound_jobs));
        for (std::size_t i = 0; i < owned_apps.size(); ++i)
            ctxs.emplace(owned_apps[i], batch[i]);
    }

    // Phase 2: one job per owned (app, load) cell, all five schemes
    // inside, in cell-index order.
    std::vector<std::function<Cell()>> cell_jobs;
    for (std::size_t ci = range.begin; ci < range.end; ++ci) {
        const std::size_t ai = ci / loads.size();
        const std::size_t li = ci % loads.size();
        cell_jobs.push_back([&, ai, li] {
            const AppContext &ctx = ctxs.at(ai);
            const auto trace = globalTraceStore().loadTrace(
                ctx.app, loads[li], ctx.n, nominal, opts.seed + 1);
            const Trace &t = *trace;

            const ReplayResult fixed =
                replayFixed(t, nominal, plat.power);
            const auto so = staticOracle(t, ctx.bound, 0.95, plat.dvfs,
                                         plat.power);
            const auto dyn = dynamicOracle(t, ctx.bound, 0.95,
                                           plat.dvfs, plat.power);

            RubikConfig nofb_cfg;
            nofb_cfg.latencyBound = ctx.bound;
            nofb_cfg.feedback = false;
            RubikController rubik_nofb(plat.dvfs, nofb_cfg);
            const SimResult nofb =
                simulate(t, rubik_nofb, plat.dvfs, plat.power);

            RubikConfig fb_cfg;
            fb_cfg.latencyBound = ctx.bound;
            RubikController rubik(plat.dvfs, fb_cfg);
            const SimResult fb =
                simulate(t, rubik, plat.dvfs, plat.power);

            Cell cell;
            cell.tail[0] = fixed.tailLatency();
            cell.tail[1] = so.replay.tailLatency();
            cell.tail[2] = dyn.replay.tailLatency();
            cell.tail[3] = nofb.tailLatency();
            cell.tail[4] = fb.tailLatency();
            cell.energy[0] = fixed.energyPerRequest();
            cell.energy[1] = so.replay.energyPerRequest();
            cell.energy[2] = dyn.replay.energyPerRequest();
            cell.energy[3] = nofb.coreEnergyPerRequest();
            cell.energy[4] = fb.coreEnergyPerRequest();
            return cell;
        });
    }
    const std::vector<Cell> cells = runner.runBatch(std::move(cell_jobs));

    for (std::size_t ai : owned_apps) {
        const AppContext &ctx = ctxs.at(ai);
        const std::size_t li_begin =
            range.begin > ai * loads.size()
                ? range.begin - ai * loads.size()
                : 0;
        const std::size_t li_end =
            std::min(loads.size(), range.end - ai * loads.size());

        // The heading and table header belong to the app's first cell:
        // a shard that picks up mid-app emits only rows.
        if (li_begin == 0)
            heading(opts, "Fig. 9: " + ctx.app.name + " (bound " +
                              fmt("%.3f", ctx.bound / kMs) +
                              " ms = fixed-freq tail @50%)");
        TablePrinter table(
            {"load", "metric", "Fixed", "StaticOracle", "DynamicOracle",
             "Rubik_noFB", "Rubik"},
            opts.csv);
        table.setShowHeader(li_begin == 0);

        for (std::size_t li = li_begin; li < li_end; ++li) {
            const Cell &cell =
                cells[ai * loads.size() + li - range.begin];
            table.addRow({fmt("%.0f%%", loads[li] * 100), "tail_ms",
                          fmt("%.3f", cell.tail[0] / kMs),
                          fmt("%.3f", cell.tail[1] / kMs),
                          fmt("%.3f", cell.tail[2] / kMs),
                          fmt("%.3f", cell.tail[3] / kMs),
                          fmt("%.3f", cell.tail[4] / kMs)});
            table.addRow({fmt("%.0f%%", loads[li] * 100), "mJ/req",
                          fmt("%.3f", cell.energy[0] / kMj),
                          fmt("%.3f", cell.energy[1] / kMj),
                          fmt("%.3f", cell.energy[2] / kMj),
                          fmt("%.3f", cell.energy[3] / kMj),
                          fmt("%.3f", cell.energy[4] / kMj)});
        }
        table.print();
    }
    return 0;
}
