/**
 * @file
 * Figure 9: trace-driven characterization. For each app and load
 * (10%..90%), tail latency (9a) and core energy per request (9b) under:
 * fixed nominal frequency, StaticOracle, DynamicOracle, Rubik without
 * feedback, and Rubik.
 *
 * Paper's shape: fixed-frequency tail explodes with load; oracles hold a
 * flat tail to ~50% (the bound is unachievable beyond — shaded region);
 * DynamicOracle saves 20-45% of StaticOracle's energy at 50%; Rubik
 * captures most of that for tight-service apps, and Rubik-without-
 * feedback runs slightly conservative (lower tail than necessary).
 */

#include "common.h"
#include "core/rubik_controller.h"
#include "policies/dynamic_oracle.h"
#include "policies/replay.h"
#include "policies/static_oracle.h"
#include "sim/simulation.h"
#include "util/units.h"
#include "workloads/trace_gen.h"

using namespace rubik;
using namespace rubik::bench;

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    Platform plat;
    const double nominal = plat.dvfs.nominalFrequency();

    for (AppId id : allApps()) {
        const AppProfile app = makeApp(id);
        const int n = opts.numRequests(std::max(app.paperRequests, 5000));

        const Trace t50 =
            generateLoadTrace(app, 0.5, n, nominal, opts.seed);
        const double bound =
            replayFixed(t50, nominal, plat.power).tailLatency(0.95);

        heading(opts, "Fig. 9: " + app.name + " (bound " +
                          fmt("%.3f", bound / kMs) +
                          " ms = fixed-freq tail @50%)");
        TablePrinter table(
            {"load", "metric", "Fixed", "StaticOracle", "DynamicOracle",
             "Rubik_noFB", "Rubik"},
            opts.csv);

        for (double load :
             {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
            const Trace t =
                generateLoadTrace(app, load, n, nominal, opts.seed + 1);

            const ReplayResult fixed = replayFixed(t, nominal, plat.power);
            const auto so =
                staticOracle(t, bound, 0.95, plat.dvfs, plat.power);
            const auto dyn =
                dynamicOracle(t, bound, 0.95, plat.dvfs, plat.power);

            RubikConfig nofb_cfg;
            nofb_cfg.latencyBound = bound;
            nofb_cfg.feedback = false;
            RubikController rubik_nofb(plat.dvfs, nofb_cfg);
            const SimResult nofb =
                simulate(t, rubik_nofb, plat.dvfs, plat.power);

            RubikConfig fb_cfg;
            fb_cfg.latencyBound = bound;
            RubikController rubik(plat.dvfs, fb_cfg);
            const SimResult fb = simulate(t, rubik, plat.dvfs, plat.power);

            table.addRow({fmt("%.0f%%", load * 100), "tail_ms",
                          fmt("%.3f", fixed.tailLatency() / kMs),
                          fmt("%.3f", so.replay.tailLatency() / kMs),
                          fmt("%.3f", dyn.replay.tailLatency() / kMs),
                          fmt("%.3f", nofb.tailLatency() / kMs),
                          fmt("%.3f", fb.tailLatency() / kMs)});
            table.addRow(
                {fmt("%.0f%%", load * 100), "mJ/req",
                 fmt("%.3f", fixed.energyPerRequest() / kMj),
                 fmt("%.3f", so.replay.energyPerRequest() / kMj),
                 fmt("%.3f", dyn.replay.energyPerRequest() / kMj),
                 fmt("%.3f", nofb.coreEnergyPerRequest() / kMj),
                 fmt("%.3f", fb.coreEnergyPerRequest() / kMj)});
        }
        table.print();
    }
    return 0;
}
