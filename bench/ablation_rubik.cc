/**
 * @file
 * Ablations of Rubik's design choices (DESIGN.md Sec. 6): octile row
 * count, distribution resolution, exact-vs-Gaussian switchover position,
 * table update period, conservative row bounds, PI feedback, and DVFS
 * transition latency. Each row reports tail/bound (must stay <= ~1.1)
 * and core energy savings vs fixed nominal frequency for masstree and
 * xapian at 40% load.
 */

#include <functional>

#include "common.h"
#include "core/rubik_controller.h"
#include "policies/replay.h"
#include "runner/experiment_runner.h"
#include "sim/simulation.h"
#include "util/units.h"
#include "workloads/trace_store.h"

using namespace rubik;
using namespace rubik::bench;

namespace {

struct Variant
{
    std::string name;
    std::function<void(RubikConfig &)> tweak;
    double transitionLatency = 4e-6;
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    const double nominal = DvfsModel::haswell().nominalFrequency();

    const std::vector<Variant> variants = {
        {"default (8 rows, 128 buckets, 16 positions, 100ms)",
         [](RubikConfig &) {}},
        {"rows=4", [](RubikConfig &c) { c.table.rows = 4; }},
        {"rows=16", [](RubikConfig &c) { c.table.rows = 16; }},
        {"buckets=32", [](RubikConfig &c) { c.table.buckets = 32; }},
        {"buckets=256", [](RubikConfig &c) { c.table.buckets = 256; }},
        {"positions=4", [](RubikConfig &c) { c.table.positions = 4; }},
        {"positions=32", [](RubikConfig &c) { c.table.positions = 32; }},
        {"update=20ms", [](RubikConfig &c) { c.updatePeriod = 20e-3; }},
        {"update=500ms", [](RubikConfig &c) { c.updatePeriod = 500e-3; }},
        {"conservative row bounds",
         [](RubikConfig &c) { c.table.conservativeRowBounds = true; }},
        {"no feedback", [](RubikConfig &c) { c.feedback = false; }},
        {"direct convolution (no FFT)",
         [](RubikConfig &c) { c.table.useFft = false; }},
        {"transitions=0.5us", [](RubikConfig &) {}, 0.5e-6},
        {"transitions=130us", [](RubikConfig &) {}, 130e-6},
    };

    // One job per (app, variant) cell. The 14 variants of one app
    // replay the *same* two traces, so jobs pull them from the
    // memoized TraceStore: each (app, load) trace is generated once
    // per process instead of once per variant.
    ExperimentRunner runner(opts.jobs);
    TraceStore &store = globalTraceStore();
    const std::vector<AppId> ids = {AppId::Masstree, AppId::Xapian};
    std::vector<std::function<std::vector<std::string>()>> jobs;
    for (AppId id : ids) {
        for (std::size_t vi = 0; vi < variants.size(); ++vi) {
            jobs.push_back([&, id, vi]() -> std::vector<std::string> {
                const Variant &v = variants[vi];
                const AppProfile app = makeApp(id);
                const int n = opts.numRequests(6000);
                Platform plat(v.transitionLatency);
                const auto t50 =
                    store.loadTrace(app, 0.5, n, nominal, opts.seed);
                const double bound =
                    replayFixed(*t50, nominal, plat.power)
                        .tailLatency(0.95);
                const auto t = store.loadTrace(app, 0.4, n, nominal,
                                               opts.seed + 1);
                const double fixed_energy =
                    replayFixed(*t, nominal, plat.power)
                        .coreActiveEnergy;

                RubikConfig cfg;
                cfg.latencyBound = bound;
                v.tweak(cfg);
                RubikController rubik(plat.dvfs, cfg);
                const SimResult r =
                    simulate(*t, rubik, plat.dvfs, plat.power);

                return {v.name,
                        fmt("%.3f", r.tailLatency(0.95) / bound),
                        fmt("%.1f%%", (1.0 - r.coreActiveEnergy() /
                                                 fixed_energy) *
                                          100)};
            });
        }
    }
    const std::vector<std::vector<std::string>> rows =
        runner.runBatch(std::move(jobs));

    for (std::size_t ai = 0; ai < ids.size(); ++ai) {
        const AppProfile app = makeApp(ids[ai]);
        heading(opts, "Ablation: " + app.name + " @ 40% load");
        TablePrinter table({"variant", "tail/bound", "energy_savings"},
                           opts.csv);
        for (std::size_t vi = 0; vi < variants.size(); ++vi)
            table.addRow(rows[ai * variants.size() + vi]);
        table.print();
    }
    return 0;
}
