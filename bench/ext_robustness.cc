/**
 * @file
 * Extension: stressing Rubik's two statistical assumptions.
 *
 *  1. Markov (Poisson) arrivals — real traffic is burstier. We drive
 *     Rubik with MMPP-2 arrivals (4x bursts, 20% duty) at the same mean
 *     load. Because Rubik reacts to the *queue* (not to an estimated
 *     rate), it should keep the bound whenever the bound remains
 *     achievable inside bursts.
 *  2. Independent per-request work (Sec. 4.1) — justified by many-user
 *     mixing and front-end caches. We induce rank autocorrelation in
 *     service times (AR(1) copula, marginals unchanged) and measure how
 *     far correlation degrades the model before feedback compensates.
 */

#include "common.h"
#include "core/rubik_controller.h"
#include "policies/replay.h"
#include "policies/static_oracle.h"
#include "sim/simulation.h"
#include "util/units.h"
#include "workloads/trace_gen.h"

using namespace rubik;
using namespace rubik::bench;

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    Platform plat;
    const double nominal = plat.dvfs.nominalFrequency();

    heading(opts, "Extension: Rubik under bursty (MMPP) arrivals and "
                  "correlated service times @ 40% mean load "
                  "(tail/bound; savings vs fixed)");
    TablePrinter table({"app", "traffic", "rubik_tail/bound",
                        "rubik_savings", "static_tail/bound"},
                       opts.csv);

    for (AppId id : {AppId::Masstree, AppId::Xapian}) {
        const AppProfile app = makeApp(id);
        const int n = opts.numRequests(8000);

        const Trace t50 =
            generateLoadTrace(app, 0.5, n, nominal, opts.seed);
        const double bound =
            replayFixed(t50, nominal, plat.power).tailLatency(0.95);

        struct Variant
        {
            std::string name;
            Trace trace;
        };
        const std::vector<Variant> variants = {
            {"poisson (paper)",
             generateLoadTrace(app, 0.4, n, nominal, opts.seed + 1)},
            // 2x bursts peak at ~67% load: the bound stays achievable
            // and queue-driven Rubik must hold it.
            {"mmpp 2x bursts",
             generateBurstyTrace(app, 0.4, n, nominal, opts.seed + 2,
                                 2.0)},
            // 4x bursts peak at ~120% of capacity: no scheme can hold
            // the bound inside a burst (the paper's "unachievable"
            // regime) — what matters is degrading no worse than the
            // clairvoyant static choice.
            {"mmpp 4x bursts",
             generateBurstyTrace(app, 0.4, n, nominal, opts.seed + 2)},
            {"corr rho=0.5",
             generateCorrelatedTrace(app, 0.4, n, nominal, opts.seed + 3,
                                     0.5)},
            {"corr rho=0.9",
             generateCorrelatedTrace(app, 0.4, n, nominal, opts.seed + 4,
                                     0.9)},
        };

        for (const auto &v : variants) {
            const double fixed_energy =
                replayFixed(v.trace, nominal, plat.power).coreActiveEnergy;
            // StaticOracle re-tuned per variant: even the clairvoyant
            // static scheme struggles when bursts exceed its margin.
            const auto so = staticOracle(v.trace, bound, 0.95, plat.dvfs,
                                         plat.power);

            RubikConfig rcfg;
            rcfg.latencyBound = bound;
            RubikController rubik(plat.dvfs, rcfg);
            const SimResult r =
                simulate(v.trace, rubik, plat.dvfs, plat.power);

            table.addRow(
                {app.name, v.name,
                 fmt("%.2f", r.tailLatency(0.95) / bound),
                 fmt("%.1f%%",
                     (1.0 - r.coreActiveEnergy() / fixed_energy) * 100),
                 fmt("%.2f", so.replay.tailLatency(0.95) / bound)});
        }
    }
    table.print();
    return 0;
}
