/**
 * @file
 * Extension: stressing Rubik's two statistical assumptions.
 *
 *  1. Markov (Poisson) arrivals — real traffic is burstier. We drive
 *     Rubik with MMPP-2 arrivals (4x bursts, 20% duty) at the same mean
 *     load. Because Rubik reacts to the *queue* (not to an estimated
 *     rate), it should keep the bound whenever the bound remains
 *     achievable inside bursts.
 *  2. Independent per-request work (Sec. 4.1) — justified by many-user
 *     mixing and front-end caches. We induce rank autocorrelation in
 *     service times (AR(1) copula, marginals unchanged) and measure how
 *     far correlation degrades the model before feedback compensates.
 */

#include <functional>

#include "common.h"
#include "core/rubik_controller.h"
#include "policies/replay.h"
#include "policies/static_oracle.h"
#include "runner/experiment_runner.h"
#include "sim/simulation.h"
#include "util/units.h"
#include "workloads/trace_gen.h"

using namespace rubik;
using namespace rubik::bench;

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    Platform plat;
    const double nominal = plat.dvfs.nominalFrequency();

    heading(opts, "Extension: Rubik under bursty (MMPP) arrivals and "
                  "correlated service times @ 40% mean load "
                  "(tail/bound; savings vs fixed)");
    TablePrinter table({"app", "traffic", "rubik_tail/bound",
                        "rubik_savings", "static_tail/bound"},
                       opts.csv);

    struct Variant
    {
        std::string name;
        Trace trace;
    };
    struct AppContext
    {
        AppProfile app;
        double bound = 0.0;
        std::vector<Variant> variants;
    };

    const std::vector<AppId> ids = {AppId::Masstree, AppId::Xapian};
    ExperimentRunner runner(opts.jobs);

    // Phase 1: per-app bound and the five traffic variants' traces.
    std::vector<std::function<AppContext()>> setup_jobs;
    for (AppId id : ids) {
        setup_jobs.push_back([&, id] {
            AppContext ctx;
            ctx.app = makeApp(id);
            const int n = opts.numRequests(8000);

            const Trace t50 =
                generateLoadTrace(ctx.app, 0.5, n, nominal, opts.seed);
            ctx.bound = replayFixed(t50, nominal, plat.power)
                            .tailLatency(0.95);

            ctx.variants = {
                {"poisson (paper)",
                 generateLoadTrace(ctx.app, 0.4, n, nominal,
                                   opts.seed + 1)},
                // 2x bursts peak at ~67% load: the bound stays
                // achievable and queue-driven Rubik must hold it.
                {"mmpp 2x bursts",
                 generateBurstyTrace(ctx.app, 0.4, n, nominal,
                                     opts.seed + 2, 2.0)},
                // 4x bursts peak at ~120% of capacity: no scheme can
                // hold the bound inside a burst (the paper's
                // "unachievable" regime) — what matters is degrading
                // no worse than the clairvoyant static choice.
                {"mmpp 4x bursts",
                 generateBurstyTrace(ctx.app, 0.4, n, nominal,
                                     opts.seed + 2)},
                {"corr rho=0.5",
                 generateCorrelatedTrace(ctx.app, 0.4, n, nominal,
                                         opts.seed + 3, 0.5)},
                {"corr rho=0.9",
                 generateCorrelatedTrace(ctx.app, 0.4, n, nominal,
                                         opts.seed + 4, 0.9)},
            };
            return ctx;
        });
    }
    const std::vector<AppContext> ctxs =
        runner.runBatch(std::move(setup_jobs));

    // Phase 2: one job per (app, variant) row.
    std::vector<std::function<std::vector<std::string>()>> row_jobs;
    for (std::size_t ai = 0; ai < ctxs.size(); ++ai) {
        for (std::size_t vi = 0; vi < ctxs[ai].variants.size(); ++vi) {
            row_jobs.push_back([&, ai, vi]() -> std::vector<std::string> {
                const AppContext &ctx = ctxs[ai];
                const Variant &v = ctx.variants[vi];
                const double fixed_energy =
                    replayFixed(v.trace, nominal, plat.power)
                        .coreActiveEnergy;
                // StaticOracle re-tuned per variant: even the
                // clairvoyant static scheme struggles when bursts
                // exceed its margin.
                const auto so = staticOracle(v.trace, ctx.bound, 0.95,
                                             plat.dvfs, plat.power);

                RubikConfig rcfg;
                rcfg.latencyBound = ctx.bound;
                RubikController rubik(plat.dvfs, rcfg);
                const SimResult r =
                    simulate(v.trace, rubik, plat.dvfs, plat.power);

                return {ctx.app.name, v.name,
                        fmt("%.2f", r.tailLatency(0.95) / ctx.bound),
                        fmt("%.1f%%", (1.0 - r.coreActiveEnergy() /
                                                 fixed_energy) *
                                          100),
                        fmt("%.2f",
                            so.replay.tailLatency(0.95) / ctx.bound)};
            });
        }
    }
    for (auto &row : runner.runBatch(std::move(row_jobs)))
        table.addRow(std::move(row));
    table.print();
    return 0;
}
