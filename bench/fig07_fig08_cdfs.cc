/**
 * @file
 * Figures 7 and 8: response-latency CDFs and Rubik frequency histograms
 * for masstree and xapian at 50% load.
 *
 * Paper's shape: all schemes meet the tail bound; Rubik pushes the *low*
 * end of the CDF right (it slows short requests to save power) much more
 * than AdrenalineOracle; Rubik's busy time concentrates at low
 * frequencies; xapian's variability forces more conservative settings, so
 * its CDF shift is smaller.
 */

#include <algorithm>
#include <cmath>

#include "common.h"
#include "core/rubik_controller.h"
#include "policies/adrenaline.h"
#include "policies/replay.h"
#include "policies/static_oracle.h"
#include "sim/simulation.h"
#include "stats/percentile.h"
#include "util/units.h"
#include "workloads/trace_gen.h"

using namespace rubik;
using namespace rubik::bench;

namespace {

void
runApp(AppId id, const Options &opts, Platform &plat)
{
    const AppProfile app = makeApp(id);
    const double nominal = plat.dvfs.nominalFrequency();
    const int n = opts.numRequests(std::max(app.paperRequests, 6000));

    const Trace t = generateLoadTrace(app, 0.5, n, nominal, opts.seed);
    const double bound =
        replayFixed(t, nominal, plat.power).tailLatency(0.95);

    const auto so = staticOracle(t, bound, 0.95, plat.dvfs, plat.power);
    const auto adr =
        adrenalineOracle(t, bound, plat.dvfs, plat.power, nominal);
    RubikConfig rcfg;
    rcfg.latencyBound = bound;
    RubikController rubik(plat.dvfs, rcfg);
    const SimResult rr = simulate(t, rubik, plat.dvfs, plat.power);

    heading(opts, "Fig. " + std::string(id == AppId::Masstree ? "7" : "8") +
                      "a: " + app.name +
                      " response-latency CDF at 50% load (ms at "
                      "percentile; bound " +
                      fmt("%.3f", bound / kMs) + " ms)");
    TablePrinter cdf({"percentile", "StaticOracle", "AdrenalineOracle",
                      "Rubik"},
                     opts.csv);
    auto so_lat = so.replay.latencies;
    auto adr_lat = adr.replay.latencies;
    auto rubik_lat = rr.latencies();
    std::sort(so_lat.begin(), so_lat.end());
    std::sort(adr_lat.begin(), adr_lat.end());
    std::sort(rubik_lat.begin(), rubik_lat.end());
    for (double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
        cdf.addRow({fmt("p%.0f", q * 100),
                    fmt("%.3f", percentileSorted(so_lat, q) / kMs),
                    fmt("%.3f", percentileSorted(adr_lat, q) / kMs),
                    fmt("%.3f", percentileSorted(rubik_lat, q) / kMs)});
    }
    cdf.print();

    heading(opts, "Fig. " + std::string(id == AppId::Masstree ? "7" : "8") +
                      "b: " + app.name +
                      " Rubik frequency histogram (fraction of busy time)");
    TablePrinter hist({"freq_GHz", "fraction"}, opts.csv);
    for (std::size_t i = 0; i < plat.dvfs.numFrequencies(); ++i) {
        hist.addRow({fmt("%.1f", plat.dvfs.frequencies()[i] / kGHz),
                     fmt("%.3f",
                         rr.core.freqResidency[i] / rr.core.busyTime)});
    }
    hist.print();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    Platform plat;
    runApp(AppId::Masstree, opts, plat);
    runApp(AppId::Xapian, opts, plat);
    return 0;
}
