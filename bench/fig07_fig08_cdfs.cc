/**
 * @file
 * Figures 7 and 8: response-latency CDFs and Rubik frequency histograms
 * for masstree and xapian at 50% load.
 *
 * Paper's shape: all schemes meet the tail bound; Rubik pushes the *low*
 * end of the CDF right (it slows short requests to save power) much more
 * than AdrenalineOracle; Rubik's busy time concentrates at low
 * frequencies; xapian's variability forces more conservative settings, so
 * its CDF shift is smaller.
 *
 * Sweep execution: each app's three scheme runs are one ExperimentRunner
 * job; blocks are emitted in submission order, so the output is
 * byte-identical to the old serial code.
 */

#include <algorithm>
#include <cmath>
#include <functional>

#include "common.h"
#include "core/rubik_controller.h"
#include "policies/adrenaline.h"
#include "policies/replay.h"
#include "policies/static_oracle.h"
#include "runner/experiment_runner.h"
#include "sim/simulation.h"
#include "stats/percentile.h"
#include "util/units.h"
#include "workloads/trace_gen.h"

using namespace rubik;
using namespace rubik::bench;

namespace {

/// One app's computed results, emitted serially after the batch.
struct AppBlock
{
    std::string name;
    std::string figure;
    double bound = 0.0;
    std::vector<double> staticLat, adrLat, rubikLat; // Sorted.
    std::vector<double> freqResidency;
    double busyTime = 0.0;
};

AppBlock
runApp(AppId id, const Options &opts, const Platform &plat)
{
    const AppProfile app = makeApp(id);
    const double nominal = plat.dvfs.nominalFrequency();
    const int n = opts.numRequests(std::max(app.paperRequests, 6000));

    const Trace t = generateLoadTrace(app, 0.5, n, nominal, opts.seed);
    const double bound =
        replayFixed(t, nominal, plat.power).tailLatency(0.95);

    const auto so = staticOracle(t, bound, 0.95, plat.dvfs, plat.power);
    const auto adr =
        adrenalineOracle(t, bound, plat.dvfs, plat.power, nominal);
    RubikConfig rcfg;
    rcfg.latencyBound = bound;
    RubikController rubik(plat.dvfs, rcfg);
    const SimResult rr = simulate(t, rubik, plat.dvfs, plat.power);

    AppBlock block;
    block.name = app.name;
    block.figure = id == AppId::Masstree ? "7" : "8";
    block.bound = bound;
    block.staticLat = so.replay.latencies;
    block.adrLat = adr.replay.latencies;
    block.rubikLat = rr.latencies();
    std::sort(block.staticLat.begin(), block.staticLat.end());
    std::sort(block.adrLat.begin(), block.adrLat.end());
    std::sort(block.rubikLat.begin(), block.rubikLat.end());
    block.freqResidency = rr.core.freqResidency;
    block.busyTime = rr.core.busyTime;
    return block;
}

void
printApp(const AppBlock &block, const Options &opts, const Platform &plat)
{
    heading(opts, "Fig. " + block.figure + "a: " + block.name +
                      " response-latency CDF at 50% load (ms at "
                      "percentile; bound " +
                      fmt("%.3f", block.bound / kMs) + " ms)");
    TablePrinter cdf({"percentile", "StaticOracle", "AdrenalineOracle",
                      "Rubik"},
                     opts.csv);
    for (double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
        cdf.addRow(
            {fmt("p%.0f", q * 100),
             fmt("%.3f", percentileSorted(block.staticLat, q) / kMs),
             fmt("%.3f", percentileSorted(block.adrLat, q) / kMs),
             fmt("%.3f", percentileSorted(block.rubikLat, q) / kMs)});
    }
    cdf.print();

    heading(opts, "Fig. " + block.figure + "b: " + block.name +
                      " Rubik frequency histogram (fraction of busy "
                      "time)");
    TablePrinter hist({"freq_GHz", "fraction"}, opts.csv);
    for (std::size_t i = 0; i < plat.dvfs.numFrequencies(); ++i) {
        hist.addRow({fmt("%.1f", plat.dvfs.frequencies()[i] / kGHz),
                     fmt("%.3f",
                         block.freqResidency[i] / block.busyTime)});
    }
    hist.print();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    Platform plat;
    ExperimentRunner runner(opts.jobs);

    std::vector<std::function<AppBlock()>> jobs;
    for (AppId id : {AppId::Masstree, AppId::Xapian})
        jobs.push_back([&, id] { return runApp(id, opts, plat); });
    for (const AppBlock &block : runner.runBatch(std::move(jobs)))
        printApp(block, opts, plat);
    return 0;
}
