/**
 * @file
 * Microbenchmarks of Rubik's runtime machinery (google-benchmark):
 *
 *  - target tail table rebuild (the paper reports 0.2 ms per rebuild at
 *    128 buckets / octile rows / 16 positions);
 *  - the per-event frequency decision (must be a handful of table
 *    lookups and divides — "updates take negligible time", Sec. 4.2);
 *  - FFT vs direct convolution of 128-bucket distributions;
 *  - profiler sample recording and distribution materialization;
 *  - end-to-end event-simulator throughput.
 */

#include <complex>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/convolution_plan.h"
#include "core/distribution.h"
#include "core/profiler.h"
#include "core/rubik_controller.h"
#include "core/target_tail_table.h"
#include "policies/distilled.h"
#include "sim/simulation.h"
#include "util/fft.h"
#include "util/rng.h"
#include "util/units.h"
#include "workloads/trace_gen.h"

namespace rubik {
namespace {

DiscreteDistribution
lognormalDist(double mu, double sigma, uint64_t seed,
              std::size_t buckets = 128)
{
    Rng rng(seed);
    Histogram h(buckets, 1.0);
    for (int i = 0; i < 4096; ++i)
        h.add(rng.lognormal(mu, sigma));
    return DiscreteDistribution::fromHistogram(h, buckets);
}

void
BM_TableRebuild(benchmark::State &state)
{
    const auto compute = lognormalDist(13.0, 0.3, 1);
    const auto memory = lognormalDist(-9.0, 0.3, 2);
    TailTableConfig cfg;
    cfg.rows = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        auto table = TargetTailTable::build(compute, memory, cfg);
        benchmark::DoNotOptimize(table);
    }
}
BENCHMARK(BM_TableRebuild)->Arg(4)->Arg(8)->Arg(16);

void
BM_TableRebuildNonConservative(benchmark::State &state)
{
    const auto compute = lognormalDist(13.0, 0.3, 1);
    const auto memory = lognormalDist(-9.0, 0.3, 2);
    TailTableConfig cfg;
    cfg.conservativeRowBounds = false;
    for (auto _ : state) {
        auto table = TargetTailTable::build(compute, memory, cfg);
        benchmark::DoNotOptimize(table);
    }
}
BENCHMARK(BM_TableRebuildNonConservative);

void
BM_TableRebuildWarmPlan(benchmark::State &state)
{
    // Steady-state controller shape: the ConvolutionPlan persists across
    // rebuilds, so every mixing-distribution spectrum is a cache hit.
    const auto compute = lognormalDist(13.0, 0.3, 1);
    const auto memory = lognormalDist(-9.0, 0.3, 2);
    TailTableConfig cfg;
    cfg.rows = static_cast<std::size_t>(state.range(0));
    ConvolutionPlan plan;
    for (auto _ : state) {
        auto table = TargetTailTable::build(compute, memory, cfg, &plan);
        benchmark::DoNotOptimize(table);
    }
}
BENCHMARK(BM_TableRebuildWarmPlan)->Arg(8)->Arg(16);

void
BM_TableRebuildPackedFft(benchmark::State &state)
{
    // The flagged packed real-input transform (one forward FFT per
    // convolution with no spectrum cache; ~1e-12 from the exact path).
    const auto compute = lognormalDist(13.0, 0.3, 1);
    const auto memory = lognormalDist(-9.0, 0.3, 2);
    TailTableConfig cfg;
    cfg.rows = static_cast<std::size_t>(state.range(0));
    cfg.packedRealFft = true;
    for (auto _ : state) {
        auto table = TargetTailTable::build(compute, memory, cfg);
        benchmark::DoNotOptimize(table);
    }
}
BENCHMARK(BM_TableRebuildPackedFft)->Arg(16);

void
BM_FrequencyDecision(benchmark::State &state)
{
    // A warm Rubik controller deciding over a queue of `range` requests.
    const DvfsModel dvfs = DvfsModel::haswell();
    const PowerModel pm(dvfs);
    RubikConfig cfg;
    cfg.latencyBound = 1.0 * kMs;
    cfg.warmupSamples = 16;
    RubikController rubik(dvfs, cfg);

    CoreEngine core(dvfs, pm);
    Rng rng(3);
    for (int i = 0; i < 64; ++i) {
        CompletedRequest done;
        done.computeCycles = rng.lognormal(13.0, 0.3);
        done.memoryTime = rng.lognormal(-9.0, 0.3);
        done.completionTime = i * 1e-4;
        rubik.onCompletion(done, core.view());
    }
    rubik.periodicUpdate(core.view()); // builds the table

    const auto depth = static_cast<int>(state.range(0));
    for (int i = 0; i < depth; ++i) {
        Request r;
        r.arrivalTime = core.now();
        r.computeCycles = 5e5;
        r.memoryTime = 1e-4;
        core.enqueue(r);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(rubik.selectFrequency(core.view()));
}
BENCHMARK(BM_FrequencyDecision)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

/// Warm a controller exactly like BM_FrequencyDecision and enqueue
/// `depth` requests, so the distilled benches measure the same decision
/// problem the exact bench does.
RubikController
warmController(const DvfsModel &dvfs, CoreEngine &core, int depth)
{
    RubikConfig cfg;
    cfg.latencyBound = 1.0 * kMs;
    cfg.warmupSamples = 16;
    RubikController rubik(dvfs, cfg);
    Rng rng(3);
    for (int i = 0; i < 64; ++i) {
        CompletedRequest done;
        done.computeCycles = rng.lognormal(13.0, 0.3);
        done.memoryTime = rng.lognormal(-9.0, 0.3);
        done.completionTime = i * 1e-4;
        rubik.onCompletion(done, core.view());
    }
    rubik.periodicUpdate(core.view()); // builds the table
    for (int i = 0; i < depth; ++i) {
        Request r;
        r.arrivalTime = core.now();
        r.computeCycles = 5e5;
        r.memoryTime = 1e-4;
        core.enqueue(r);
    }
    return rubik;
}

void
BM_DistilledDecision(benchmark::State &state)
{
    // The distilled LUT answering the same queue BM_FrequencyDecision
    // answers exactly — the serve daemon's per-event hot path (view
    // already materialized, decide() straight into the table).
    const DvfsModel dvfs = DvfsModel::haswell();
    const PowerModel pm(dvfs);
    CoreEngine core(dvfs, pm);
    RubikController rubik =
        warmController(dvfs, core, static_cast<int>(state.range(0)));
    const DistilledModel model =
        DistilledModel::distill(rubik, dvfs, DistilledConfig{});
    const CoreView view = core.view();
    bool needExact = false;
    for (auto _ : state)
        benchmark::DoNotOptimize(model.decide(view, &needExact));
}
BENCHMARK(BM_DistilledDecision)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void
BM_DistilledPolicyDecision(benchmark::State &state)
{
    // Same decision through the full DvfsPolicy interface (view fill,
    // power-cap ceiling, exact fallback wiring) — the overhead a
    // simulator-driven DistilledPolicy pays on top of decide().
    const DvfsModel dvfs = DvfsModel::haswell();
    const PowerModel pm(dvfs);
    CoreEngine core(dvfs, pm);
    RubikController rubik =
        warmController(dvfs, core, static_cast<int>(state.range(0)));
    DistilledModel model =
        DistilledModel::distill(rubik, dvfs, DistilledConfig{});
    DistilledPolicy policy(std::move(model), rubik, dvfs,
                           /*autoRetrain=*/false);
    for (auto _ : state)
        benchmark::DoNotOptimize(policy.selectFrequency(core.view()));
}
BENCHMARK(BM_DistilledPolicyDecision)->Arg(4)->Arg(64);

void
BM_ConvolveFft(benchmark::State &state)
{
    const auto a = lognormalDist(13.0, 0.3, 4);
    const auto b = lognormalDist(13.0, 0.4, 5);
    ConvolveOptions opts;
    opts.useFft = true;
    for (auto _ : state)
        benchmark::DoNotOptimize(a.convolveWith(b, opts));
}
BENCHMARK(BM_ConvolveFft);

void
BM_ConvolveDirect(benchmark::State &state)
{
    const auto a = lognormalDist(13.0, 0.3, 4);
    const auto b = lognormalDist(13.0, 0.4, 5);
    ConvolveOptions opts;
    opts.useFft = false;
    for (auto _ : state)
        benchmark::DoNotOptimize(a.convolveWith(b, opts));
}
BENCHMARK(BM_ConvolveDirect);

void
BM_ConvolvePacked(benchmark::State &state)
{
    const auto a = lognormalDist(13.0, 0.3, 4);
    const auto b = lognormalDist(13.0, 0.4, 5);
    ConvolveOptions opts;
    opts.packedReal = true;
    for (auto _ : state)
        benchmark::DoNotOptimize(a.convolveWith(b, opts, nullptr));
}
BENCHMARK(BM_ConvolvePacked);

void
BM_FftPlanned(benchmark::State &state)
{
    // One planned forward+inverse pair at the convolution's native size.
    const auto n = static_cast<std::size_t>(state.range(0));
    const FftPlan &plan = FftPlan::forSize(n);
    std::vector<std::complex<double>> buf(n);
    for (std::size_t i = 0; i < n; ++i)
        buf[i] = 1.0 / static_cast<double>(i + 1);
    for (auto _ : state) {
        plan.run(buf.data(), false);
        plan.run(buf.data(), true);
        benchmark::DoNotOptimize(buf.data());
    }
}
BENCHMARK(BM_FftPlanned)->Arg(256)->Arg(1024);

void
BM_FftUnplanned(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    std::vector<std::complex<double>> buf(n);
    for (std::size_t i = 0; i < n; ++i)
        buf[i] = 1.0 / static_cast<double>(i + 1);
    for (auto _ : state) {
        fft(buf, false);
        fft(buf, true);
        benchmark::DoNotOptimize(buf.data());
    }
}
BENCHMARK(BM_FftUnplanned)->Arg(256)->Arg(1024);

void
BM_QuantileUpper(benchmark::State &state)
{
    // The table-build inner-loop quantile: a binary search over the
    // cached CDF.
    const auto d = lognormalDist(13.0, 0.3, 4);
    double q = 0.0;
    for (auto _ : state) {
        q += 1e-4;
        if (q >= 1.0)
            q = 0.0;
        benchmark::DoNotOptimize(d.quantileUpper(q));
    }
}
BENCHMARK(BM_QuantileUpper);

void
BM_ProfilerRecordAndBuild(benchmark::State &state)
{
    Profiler prof(4096, 128);
    Rng rng(6);
    for (int i = 0; i < 4096; ++i)
        prof.record(rng.lognormal(13.0, 0.3), rng.lognormal(-9.0, 0.3));
    for (auto _ : state) {
        prof.record(5e5, 1e-4);
        benchmark::DoNotOptimize(prof.computeDistribution());
    }
}
BENCHMARK(BM_ProfilerRecordAndBuild);

void
BM_EventSimThroughput(benchmark::State &state)
{
    const DvfsModel dvfs = DvfsModel::haswell();
    const PowerModel pm(dvfs);
    const AppProfile app = makeApp(AppId::Masstree);
    const Trace trace =
        generateLoadTrace(app, 0.5, 5000, dvfs.nominalFrequency(), 7);
    for (auto _ : state) {
        FixedFrequencyPolicy fixed(dvfs.nominalFrequency());
        benchmark::DoNotOptimize(simulate(trace, fixed, dvfs, pm));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(trace.size()));
}
BENCHMARK(BM_EventSimThroughput);

void
BM_RubikSimThroughput(benchmark::State &state)
{
    const DvfsModel dvfs = DvfsModel::haswell();
    const PowerModel pm(dvfs);
    const AppProfile app = makeApp(AppId::Masstree);
    const Trace trace =
        generateLoadTrace(app, 0.5, 5000, dvfs.nominalFrequency(), 7);
    const double bound =
        traceMeanServiceTime(trace, dvfs.nominalFrequency()) * 4.0;
    for (auto _ : state) {
        RubikConfig cfg;
        cfg.latencyBound = bound;
        RubikController rubik(dvfs, cfg);
        benchmark::DoNotOptimize(simulate(trace, rubik, dvfs, pm));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(trace.size()));
}
BENCHMARK(BM_RubikSimThroughput);

} // namespace
} // namespace rubik

BENCHMARK_MAIN();
