/**
 * @file
 * Figure 6: core power savings of StaticOracle, AdrenalineOracle and
 * Rubik over the fixed-frequency baseline, for the five apps at 30/40/50%
 * load. Latency bound: fixed-frequency tail at 50% load.
 *
 * Paper's shape: all three save a lot at 30%; at 50% StaticOracle saves
 * ~nothing, AdrenalineOracle a little (mostly masstree), and Rubik keeps
 * saving (up to ~28%, ~15% average); Rubik wins everywhere.
 *
 * Sweep execution: every (app, load) cell is an independent simulation
 * job run through ExperimentRunner; rows are emitted in submission
 * order, so the output is byte-identical to the old serial loop.
 */

#include "common.h"
#include "core/rubik_controller.h"
#include "policies/adrenaline.h"
#include "policies/replay.h"
#include "policies/static_oracle.h"
#include "runner/experiment_runner.h"
#include "sim/simulation.h"
#include "workloads/trace_gen.h"

using namespace rubik;
using namespace rubik::bench;

namespace {

/// Per-app inputs shared by that app's three load cells.
struct AppContext
{
    AppProfile app;
    int n = 0;
    Trace t50;
    double bound = 0.0;
};

/// One (app, load) cell: savings of each scheme vs. fixed nominal (%).
struct Cell
{
    double staticOracle = 0.0;
    double adrenaline = 0.0;
    double rubik = 0.0;
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    Platform plat;
    const double nominal = plat.dvfs.nominalFrequency();
    ExperimentRunner runner(opts.jobs);

    heading(opts, "Fig. 6: core power savings over fixed 2.4 GHz (%)");
    TablePrinter table({"app", "load", "StaticOracle", "AdrenalineOracle",
                        "Rubik"},
                       opts.csv);

    const std::vector<AppId> apps = allApps();
    const std::vector<double> loads = {0.3, 0.4, 0.5};

    // Phase 1: per-app 50%-load trace and latency bound.
    std::vector<std::function<AppContext()>> bound_jobs;
    for (AppId id : apps) {
        bound_jobs.push_back([&, id] {
            AppContext ctx;
            ctx.app = makeApp(id);
            ctx.n = opts.numRequests(std::max(ctx.app.paperRequests, 5000));
            ctx.t50 = generateLoadTrace(ctx.app, 0.5, ctx.n, nominal,
                                        opts.seed);
            ctx.bound = replayFixed(ctx.t50, nominal, plat.power)
                            .tailLatency(0.95);
            return ctx;
        });
    }
    const std::vector<AppContext> ctxs =
        runner.runBatch(std::move(bound_jobs));

    // Phase 2: one job per (app, load) cell.
    std::vector<std::function<Cell()>> cell_jobs;
    for (std::size_t ai = 0; ai < ctxs.size(); ++ai) {
        for (std::size_t li = 0; li < loads.size(); ++li) {
            cell_jobs.push_back([&, ai, li] {
                const AppContext &ctx = ctxs[ai];
                const double load = loads[li];
                // The 50% traces reuse the bound trace so StaticOracle at
                // nominal is feasible by construction, as in the paper.
                const Trace t =
                    load == 0.5 ? ctx.t50
                                : generateLoadTrace(ctx.app, load, ctx.n,
                                                    nominal, opts.seed + 1);
                const double fixed_energy =
                    replayFixed(t, nominal, plat.power).coreActiveEnergy;

                const auto so = staticOracle(t, ctx.bound, 0.95, plat.dvfs,
                                             plat.power);
                const auto adr = adrenalineOracle(t, ctx.bound, plat.dvfs,
                                                  plat.power, nominal);

                RubikConfig rcfg;
                rcfg.latencyBound = ctx.bound;
                RubikController rubik(plat.dvfs, rcfg);
                const SimResult rr =
                    simulate(t, rubik, plat.dvfs, plat.power);

                Cell cell;
                cell.staticOracle =
                    (1.0 - so.replay.coreActiveEnergy / fixed_energy) * 100;
                cell.adrenaline =
                    (1.0 - adr.replay.coreActiveEnergy / fixed_energy) *
                    100;
                cell.rubik =
                    (1.0 - rr.coreActiveEnergy() / fixed_energy) * 100;
                return cell;
            });
        }
    }
    const std::vector<Cell> cells = runner.runBatch(std::move(cell_jobs));

    double sums[3][3] = {}; // [scheme][load index]
    for (std::size_t ai = 0; ai < ctxs.size(); ++ai) {
        for (std::size_t li = 0; li < loads.size(); ++li) {
            const Cell &cell = cells[ai * loads.size() + li];
            sums[0][li] += cell.staticOracle;
            sums[1][li] += cell.adrenaline;
            sums[2][li] += cell.rubik;
            table.addRow({ctxs[ai].app.name,
                          fmt("%.0f%%", loads[li] * 100),
                          fmt("%.1f", cell.staticOracle),
                          fmt("%.1f", cell.adrenaline),
                          fmt("%.1f", cell.rubik)});
        }
    }
    const double n_apps = static_cast<double>(apps.size());
    for (std::size_t li = 0; li < loads.size(); ++li) {
        table.addRow({"mean", fmt("%.0f%%", loads[li] * 100),
                      fmt("%.1f", sums[0][li] / n_apps),
                      fmt("%.1f", sums[1][li] / n_apps),
                      fmt("%.1f", sums[2][li] / n_apps)});
    }
    table.print();
    return 0;
}
