/**
 * @file
 * Figure 6: core power savings of StaticOracle, AdrenalineOracle and
 * Rubik over the fixed-frequency baseline, for the five apps at 30/40/50%
 * load. Latency bound: fixed-frequency tail at 50% load.
 *
 * Paper's shape: all three save a lot at 30%; at 50% StaticOracle saves
 * ~nothing, AdrenalineOracle a little (mostly masstree), and Rubik keeps
 * saving (up to ~28%, ~15% average); Rubik wins everywhere.
 */

#include "common.h"
#include "core/rubik_controller.h"
#include "policies/adrenaline.h"
#include "policies/replay.h"
#include "policies/static_oracle.h"
#include "sim/simulation.h"
#include "workloads/trace_gen.h"

using namespace rubik;
using namespace rubik::bench;

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    Platform plat;
    const double nominal = plat.dvfs.nominalFrequency();

    heading(opts, "Fig. 6: core power savings over fixed 2.4 GHz (%)");
    TablePrinter table({"app", "load", "StaticOracle", "AdrenalineOracle",
                        "Rubik"},
                       opts.csv);

    double sums[3][3] = {}; // [scheme][load index]
    const std::vector<double> loads = {0.3, 0.4, 0.5};

    for (AppId id : allApps()) {
        const AppProfile app = makeApp(id);
        const int n = opts.numRequests(std::max(app.paperRequests, 5000));

        const Trace t50 =
            generateLoadTrace(app, 0.5, n, nominal, opts.seed);
        const double bound =
            replayFixed(t50, nominal, plat.power).tailLatency(0.95);

        for (std::size_t li = 0; li < loads.size(); ++li) {
            const double load = loads[li];
            // The 50% traces reuse the bound trace so StaticOracle at
            // nominal is feasible by construction, as in the paper.
            const Trace t =
                load == 0.5 ? t50
                            : generateLoadTrace(app, load, n, nominal,
                                                opts.seed + 1);
            const double fixed_energy =
                replayFixed(t, nominal, plat.power).coreActiveEnergy;

            const auto so =
                staticOracle(t, bound, 0.95, plat.dvfs, plat.power);
            const auto adr = adrenalineOracle(t, bound, plat.dvfs,
                                              plat.power, nominal);

            RubikConfig rcfg;
            rcfg.latencyBound = bound;
            RubikController rubik(plat.dvfs, rcfg);
            const SimResult rr = simulate(t, rubik, plat.dvfs, plat.power);

            const double s_so =
                (1.0 - so.replay.coreActiveEnergy / fixed_energy) * 100;
            const double s_adr =
                (1.0 - adr.replay.coreActiveEnergy / fixed_energy) * 100;
            const double s_rubik =
                (1.0 - rr.coreActiveEnergy() / fixed_energy) * 100;
            sums[0][li] += s_so;
            sums[1][li] += s_adr;
            sums[2][li] += s_rubik;

            table.addRow({app.name, fmt("%.0f%%", load * 100),
                          fmt("%.1f", s_so), fmt("%.1f", s_adr),
                          fmt("%.1f", s_rubik)});
        }
    }
    const double n_apps = static_cast<double>(allApps().size());
    for (std::size_t li = 0; li < loads.size(); ++li) {
        table.addRow({"mean", fmt("%.0f%%", loads[li] * 100),
                      fmt("%.1f", sums[0][li] / n_apps),
                      fmt("%.1f", sums[1][li] / n_apps),
                      fmt("%.1f", sums[2][li] / n_apps)});
    }
    table.print();
    return 0;
}
