/**
 * @file
 * Extension: tail latency and energy vs thermal headroom under
 * adversarial arrival scenarios (workloads/scenarios.h).
 *
 * The paper's evaluation assumes the chip can always reach its top
 * DVFS state. A thermally limited part cannot: sustained load
 * heat-soaks the RC network (power/thermal_model.h) until boosting
 * would cross the junction limit. This bench sweeps the thermal
 * headroom (junction minus ambient) across three scenario families —
 * diurnal sine, flash crowd, multi-tier cascade — and compares plain
 * Rubik against the thermally budgeted RubikThermal controller
 * (policies/rubik_thermal.h).
 *
 * The shape to expect: with roomy headroom the two schemes are
 * identical (the thermal ceiling never binds and temperatures sit a
 * few degrees over ambient). As headroom shrinks toward the
 * scenario's self-heating, rubik keeps boosting and its peak die
 * temperature crosses the junction limit, while rubik-thermal trades
 * tail slack for staying under it — the bounded-by-physics operating
 * curve. Temperature-dependent leakage makes the hot scheme pay
 * extra energy on top (extra_leak_mj_per_req).
 *
 * Sharding: `--shard I/N --csv` emits shard I's contiguous slice of
 * the (scenario, headroom, policy) cell grid; heading and header
 * belong to cell 0, so concatenated shard outputs are byte-identical
 * to the unsharded run (CI-gated, like every sharded bench).
 */

#include <functional>
#include <vector>

#include "common.h"
#include "policies/replay.h"
#include "runner/experiment_runner.h"
#include "runner/sweep_runner.h"
#include "runner/sweep_spec.h"
#include "util/units.h"
#include "workloads/scenarios.h"
#include "workloads/trace_gen.h"

using namespace rubik;
using namespace rubik::bench;

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv, /*allow_shard=*/true);
    Platform plat;
    const double nominal = plat.dvfs.nominalFrequency();
    const AppProfile app = makeApp(AppId::Masstree);
    const int n = opts.numRequests(6000);

    // Junction = ambient + headroom. 30 C never binds (the reference
    // rows), the smaller values descend into the scenarios' own
    // self-heating range.
    const std::vector<double> headrooms =
        opts.fast ? std::vector<double>{30.0, 10.0, 6.0}
                  : std::vector<double>{30.0, 15.0, 10.0, 6.0};
    const std::vector<std::string> policies = {"rubik",
                                               "rubik-thermal"};

    struct Scenario
    {
        std::string name;
        Trace trace;
    };
    struct Context
    {
        double bound = 0.0;
        std::vector<Scenario> scenarios;
    };

    ExperimentRunner runner(opts.jobs);

    // Phase 1: the shared bound and one trace per scenario family.
    // Scenario spans derive from the app's max rate so every family
    // carries ~n requests regardless of --requests scaling.
    std::vector<std::function<Context()>> setup_jobs;
    setup_jobs.push_back([&] {
        Context ctx;
        const Trace t50 =
            generateLoadTrace(app, 0.5, n, nominal, opts.seed);
        ctx.bound =
            replayFixed(t50, nominal, plat.power).tailLatency(0.95);

        const double rate = 0.55 * app.maxQps(nominal, nominal);
        const double span = static_cast<double>(n) / rate;
        Scenario diurnal{
            "diurnal",
            generateDiurnalTrace(app, 0.55, 0.35, span / 2.0, span,
                                 nominal, opts.seed + 1)};
        Scenario flash{
            "flash",
            generateFlashCrowdTrace(app, 0.45, 0.95, 0.3 * span,
                                    0.1 * span, span, nominal,
                                    opts.seed + 2)};
        Scenario cascade{
            "cascade",
            generateCascadeTrace(app, 0.55, 3, 2.0, 2e-3, n / 7,
                                 nominal, opts.seed + 3)};
        for (Scenario *s : {&diurnal, &flash, &cascade})
            annotateClasses(s->trace, 0.85, nominal);
        ctx.scenarios = {std::move(diurnal), std::move(flash),
                         std::move(cascade)};
        return ctx;
    });
    const Context ctx =
        runner.runBatch(std::move(setup_jobs)).front();

    const std::size_t cells =
        ctx.scenarios.size() * headrooms.size() * policies.size();
    const ShardRange range =
        shardRange(cells, opts.shard, opts.numShards);

    if (range.begin == 0) {
        heading(opts,
                "Extension: tail latency and energy vs thermal "
                "headroom (junction - ambient) under adversarial "
                "scenarios; rubik vs rubik-thermal");
    }
    TablePrinter table({"scenario", "headroom_c", "policy", "tail_ms",
                        "tail_over_bound", "energy_mj_per_req",
                        "max_temp_c", "extra_leak_mj_per_req"},
                       opts.csv);
    table.setShowHeader(range.begin == 0);

    // Phase 2: one job per (scenario, headroom, policy) cell, fanned
    // out in cell order so rows land deterministically.
    std::vector<std::function<std::vector<std::string>()>> row_jobs;
    for (std::size_t ci = range.begin; ci < range.end; ++ci) {
        row_jobs.push_back([&, ci]() -> std::vector<std::string> {
            const std::size_t per_scenario =
                headrooms.size() * policies.size();
            const Scenario &sc = ctx.scenarios[ci / per_scenario];
            const double headroom =
                headrooms[(ci % per_scenario) / policies.size()];
            const std::string &policy = policies[ci % policies.size()];

            PolicyRunRequest req;
            req.trace = &sc.trace;
            req.bound = ctx.bound;
            req.dvfs = &plat.dvfs;
            req.power = &plat.power;
            req.options = opts.sim;
            req.options.thermal.enabled = true;
            req.options.thermal.params.junction =
                req.options.thermal.params.ambient + headroom;
            const PolicyOutcome out = runPolicy(policy, req);

            return {sc.name, fmt("%.0f", headroom), policy,
                    fmt("%.3f", out.tailLatency / kMs),
                    fmt("%.2f", out.tailLatency / ctx.bound),
                    fmt("%.4f", out.energyPerRequest / kMj),
                    fmt("%.2f", out.maxCoreTemp),
                    fmt("%.4f", out.extraLeakagePerRequest / kMj)};
        });
    }
    for (auto &row : runner.runBatch(std::move(row_jobs)))
        table.addRow(std::move(row));
    table.print();
    return 0;
}
