#include "common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "runner/sweep_spec.h"

namespace rubik::bench {

int
Options::numRequests(int bench_default) const
{
    int n = requests > 0 ? requests : bench_default;
    if (fast)
        n = std::max(200, n / 4);
    return n;
}

Options
parseOptions(int argc, char **argv, bool allow_shard)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--csv") == 0) {
            opts.csv = true;
        } else if (std::strcmp(argv[i], "--fast") == 0) {
            opts.fast = true;
        } else if (std::strcmp(argv[i], "--requests") == 0 &&
                   i + 1 < argc) {
            opts.requests = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            opts.seed = static_cast<uint64_t>(std::atoll(argv[++i]));
        } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            opts.jobs = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--shard") == 0 &&
                   i + 1 < argc) {
            if (!rubik::parseShardArg(argv[++i], &opts.shard,
                                      &opts.numShards)) {
                std::fprintf(stderr,
                             "--shard wants I/N with 0 <= I < N\n");
                std::exit(1);
            }
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::printf("usage: %s [--csv] [--fast] [--requests N] "
                        "[--seed S] [--jobs N] [--shard I/N]\n",
                        argv[0]);
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown flag: %s (try --help)\n",
                         argv[i]);
            std::exit(1);
        }
    }
    if (opts.numShards > 1 && !allow_shard) {
        std::fprintf(stderr, "this bench does not support --shard\n");
        std::exit(1);
    }
    if (opts.numShards > 1 && !opts.csv) {
        // Text tables align columns across all rows, so a shard's
        // bytes would differ from the full run's; only CSV shards
        // concatenate exactly.
        std::fprintf(stderr, "--shard requires --csv\n");
        std::exit(1);
    }
    return opts;
}

TablePrinter::TablePrinter(std::vector<std::string> headers, bool csv)
    : headers_(std::move(headers)), csv_(csv)
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TablePrinter::print() const
{
    if (csv_) {
        auto print_row = [](const std::vector<std::string> &row) {
            for (std::size_t i = 0; i < row.size(); ++i)
                std::printf("%s%s", i ? "," : "", row[i].c_str());
            std::printf("\n");
        };
        if (showHeader_)
            print_row(headers_);
        for (const auto &row : rows_)
            print_row(row);
        return;
    }

    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t i = 0; i < headers_.size(); ++i)
        widths[i] = headers_[i].size();
    for (const auto &row : rows_) {
        for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            std::printf("%s%-*s", i ? "  " : "",
                        static_cast<int>(widths[i]), row[i].c_str());
        }
        std::printf("\n");
    };
    print_row(headers_);
    std::size_t total = headers_.empty() ? 0 : 2 * (headers_.size() - 1);
    for (auto w : widths)
        total += w;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto &row : rows_)
        print_row(row);
}

std::string
fmt(const char *format, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, value);
    return buf;
}

void
heading(const Options &opts, const std::string &title)
{
    if (opts.csv)
        std::printf("# %s\n", title.c_str());
    else
        std::printf("\n=== %s ===\n\n", title.c_str());
}

} // namespace rubik::bench
