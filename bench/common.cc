#include "common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>

#include "runner/backend.h"
#include "runner/fault.h"
#include "runner/options_parser.h"
#include "workloads/cache_manager.h"
#include "workloads/trace_store.h"

namespace rubik::bench {

namespace {

/// atexit hook so a capped bench converges the cache even when its
/// run was all-hits (no writes, hence no write-triggered enforcement).
void
enforceCacheCapAtExit()
{
    rubik::globalTraceStore().enforceCacheCap();
}

/**
 * Re-run this binary once per shard through the chosen backend and
 * merge the shard CSVs onto stdout. `argv` is the original command
 * line; the child argument vector keeps every flag except the
 * backend/dispatch ones (each child runs `--backend local`
 * implicitly) and gets `--shard I/N` appended by the backend.
 */
[[noreturn]] void
dispatchSelf(int argc, char **argv, const Options &opts)
{
    std::vector<std::string> child_argv;
    child_argv.push_back(rubik::selfExePath(argv[0]));
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--backend") ||
            !std::strcmp(argv[i], "--shards")) {
            ++i; // skip the flag's value too
            continue;
        }
        if (!std::strncmp(argv[i], "--backend=", 10) ||
            !std::strncmp(argv[i], "--shards=", 9))
            continue;
        child_argv.push_back(argv[i]);
    }

    rubik::BackendConfig cfg;
    cfg.numShards = opts.shards;
    cfg.jobs = opts.jobs;
    cfg.traceCacheDir = opts.traceCache;
    cfg.selfExe = child_argv.front();
    try {
        const auto backend = rubik::makeBackend(opts.backend, cfg);
        backend->dispatchArgv(child_argv, stdout);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "backend dispatch failed: %s\n", e.what());
        std::exit(1);
    }
    std::exit(0);
}

} // anonymous namespace

int
Options::numRequests(int bench_default) const
{
    int n = requests > 0 ? requests : bench_default;
    if (fast)
        n = std::max(200, n / 4);
    return n;
}

Options
parseOptions(int argc, char **argv, bool allow_shard)
{
    Options opts;
    rubik::CommonRunOptions run;
    rubik::ShardOption shard;
    rubik::OptionsParser parser(argc, argv);
    parser.flag("--csv", [&opts] { opts.csv = true; });
    parser.flag("--fast", [&opts] { opts.fast = true; });
    rubik::addRunFlags(parser, &run);
    rubik::addSimdFlag(parser, &run);
    rubik::addShardFlag(parser, &shard);
    parser.value("--backend",
                 [&opts](const char *v) { opts.backend = v; });
    parser.value("--shards",
                 [&opts](const char *v) { opts.shards = std::atoi(v); });
    parser.value("--trace-cache",
                 [&opts](const char *v) { opts.traceCache = v; });
    parser.value("--cache-cap",
                 [&opts](const char *v) { opts.cacheCap = v; });
    parser.value("--fault", [&opts](const char *v) { opts.fault = v; });
    parser.flag("--help", [argv] {
        std::printf("usage: %s [--csv] [--fast] [--requests N] "
                    "[--seed S] [--jobs N] [--shard I/N] "
                    "[--simd auto|scalar|avx2|neon] "
                    "[--backend local|subprocess|command:<tmpl>] "
                    "[--shards N] [--trace-cache DIR] "
                    "[--cache-cap SIZE] [--fault SPEC]\n",
                    argv[0]);
        std::exit(0);
    });
    parser.run();

    opts.seed = run.seed;
    opts.requests = run.requests;
    opts.jobs = run.jobs;
    opts.sim = run.sim;
    opts.shard = shard.shard;
    opts.numShards = shard.numShards;
    // Only a given --simd overrides RUBIK_SIMD; the Auto default
    // would otherwise clobber the environment selection CI pins.
    if (run.simdGiven)
        rubik::applySimdSelection(run);
    if (opts.numShards > 1 && !allow_shard) {
        std::fprintf(stderr, "this bench does not support --shard\n");
        std::exit(1);
    }
    if (opts.numShards > 1 && !opts.csv) {
        // Text tables align columns across all rows, so a shard's
        // bytes would differ from the full run's; only CSV shards
        // concatenate exactly.
        std::fprintf(stderr, "--shard requires --csv\n");
        std::exit(1);
    }
    if (!opts.fault.empty()) {
        // Arm this process and export the spec so dispatched shard
        // children inherit it (delay-trace-io is the useful kind
        // here: it stretches the cache-contention window the per-key
        // lock protects).
        ::setenv("RUBIK_FAULT", opts.fault.c_str(), 1);
        try {
            rubik::FaultInjector::instance().configure(opts.fault);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "--fault: %s\n", e.what());
            std::exit(1);
        }
    }
    if (!opts.traceCache.empty()) {
        try {
            globalTraceStore().setCacheDir(opts.traceCache);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "%s\n", e.what());
            std::exit(1);
        }
    }
    if (!opts.cacheCap.empty()) {
        try {
            globalTraceStore().setCacheCap(
                rubik::parseSizeBytes(opts.cacheCap));
        } catch (const std::exception &e) {
            std::fprintf(stderr, "--cache-cap: %s\n", e.what());
            std::exit(1);
        }
        std::atexit(enforceCacheCapAtExit);
    }
    if (opts.backend != "local") {
        if (opts.shards > 1 && !allow_shard) {
            std::fprintf(stderr,
                         "this bench does not support sharded "
                         "dispatch (--shards)\n");
            std::exit(1);
        }
        if (opts.shards > 1 && !opts.csv) {
            std::fprintf(stderr,
                         "--backend with --shards > 1 requires "
                         "--csv\n");
            std::exit(1);
        }
        if (opts.numShards > 1) {
            std::fprintf(stderr,
                         "--shard cannot be combined with "
                         "--backend\n");
            std::exit(1);
        }
        dispatchSelf(argc, argv, opts);
    }
    return opts;
}

TablePrinter::TablePrinter(std::vector<std::string> headers, bool csv)
    : headers_(std::move(headers)), csv_(csv)
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TablePrinter::print() const
{
    if (csv_) {
        auto print_row = [](const std::vector<std::string> &row) {
            for (std::size_t i = 0; i < row.size(); ++i)
                std::printf("%s%s", i ? "," : "", row[i].c_str());
            std::printf("\n");
        };
        if (showHeader_)
            print_row(headers_);
        for (const auto &row : rows_)
            print_row(row);
        return;
    }

    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t i = 0; i < headers_.size(); ++i)
        widths[i] = headers_[i].size();
    for (const auto &row : rows_) {
        for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            std::printf("%s%-*s", i ? "  " : "",
                        static_cast<int>(widths[i]), row[i].c_str());
        }
        std::printf("\n");
    };
    print_row(headers_);
    std::size_t total = headers_.empty() ? 0 : 2 * (headers_.size() - 1);
    for (auto w : widths)
        total += w;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto &row : rows_)
        print_row(row);
}

std::string
fmt(const char *format, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, value);
    return buf;
}

void
heading(const Options &opts, const std::string &title)
{
    if (opts.csv)
        std::printf("# %s\n", title.c_str());
    else
        std::printf("\n=== %s ===\n\n", title.c_str());
}

} // namespace rubik::bench
