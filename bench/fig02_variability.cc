/**
 * @file
 * Figure 2: the short-term variability analysis that motivates Rubik.
 *
 *  (a) CDF of instantaneous load (QPS over a rolling 5 ms window,
 *      normalized to the average) for the five apps.
 *  (b) A masstree execution trace at 50% load: QPS, service times, queue
 *      lengths and response times over time (1-second summary rows).
 *  (c) Tail latency vs load, normalized to the 95th-percentile service
 *      time — shows queuing dominating the tail well below saturation.
 */

#include <algorithm>
#include <cstdio>
#include <functional>

#include "common.h"
#include "runner/experiment_runner.h"
#include "sim/metrics.h"
#include "sim/simulation.h"
#include "stats/percentile.h"
#include "util/units.h"
#include "workloads/trace_gen.h"

using namespace rubik;
using namespace rubik::bench;

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    Platform plat;
    const double nominal = plat.dvfs.nominalFrequency();
    ExperimentRunner runner(opts.jobs);
    const std::vector<AppId> apps = allApps();

    heading(opts, "Fig. 2a: CDF of instantaneous QPS over 5ms windows, "
                  "normalized to average load (values at percentiles)");
    TablePrinter cdf({"app", "p10", "p25", "p50", "p75", "p90", "p99"},
                     opts.csv);
    std::vector<std::function<std::vector<std::string>()>> cdf_jobs;
    for (AppId id : apps) {
        cdf_jobs.push_back([&, id]() -> std::vector<std::string> {
            const AppProfile app = makeApp(id);
            const int n = opts.numRequests(app.paperRequests * 2);
            const Trace t =
                generateLoadTrace(app, 0.5, n, nominal, opts.seed);
            std::vector<double> arrivals;
            for (const auto &r : t)
                arrivals.push_back(r.arrivalTime);
            const double avg_rate =
                static_cast<double>(t.size() - 1) / traceDuration(t);
            auto qps = instantaneousQps(arrivals, 5.0 * kMs, 1.0 * kMs);
            std::vector<double> norm;
            for (const auto &s : qps)
                norm.push_back(s.value / avg_rate);
            std::sort(norm.begin(), norm.end());
            return {app.name, fmt("%.2f", percentileSorted(norm, 0.10)),
                    fmt("%.2f", percentileSorted(norm, 0.25)),
                    fmt("%.2f", percentileSorted(norm, 0.50)),
                    fmt("%.2f", percentileSorted(norm, 0.75)),
                    fmt("%.2f", percentileSorted(norm, 0.90)),
                    fmt("%.2f", percentileSorted(norm, 0.99))};
        });
    }
    for (auto &row : runner.runBatch(std::move(cdf_jobs)))
        cdf.addRow(std::move(row));
    cdf.print();

    heading(opts, "Fig. 2b: masstree trace at 50% load "
                  "(per-second summaries)");
    {
        const AppProfile app = makeApp(AppId::Masstree);
        const int n = opts.numRequests(9000);
        const Trace t =
            generateLoadTrace(app, 0.5, n, nominal, opts.seed + 1);
        FixedFrequencyPolicy fixed(nominal);
        const SimResult sim = simulate(t, fixed, plat.dvfs, plat.power);

        TablePrinter rows({"t_s", "qps", "svc_p50_ms", "svc_p95_ms",
                           "qlen_p50", "qlen_p95", "resp_p95_ms"},
                          opts.csv);
        const double t_end = sim.simTime;
        for (double t0 = 0.0; t0 + 1.0 <= t_end; t0 += 1.0) {
            std::vector<double> svc, qlen, resp;
            int arrivals_in = 0;
            for (const auto &c : sim.completed) {
                if (c.arrivalTime >= t0 && c.arrivalTime < t0 + 1.0) {
                    ++arrivals_in;
                    svc.push_back(c.serviceTime());
                    qlen.push_back(c.queueLenAtArrival);
                    resp.push_back(c.latency());
                }
            }
            rows.addRow({fmt("%.0f", t0),
                         fmt("%.0f", static_cast<double>(arrivals_in)),
                         fmt("%.3f", percentile(svc, 0.5) / kMs),
                         fmt("%.3f", percentile(svc, 0.95) / kMs),
                         fmt("%.0f", percentile(qlen, 0.5)),
                         fmt("%.0f", percentile(qlen, 0.95)),
                         fmt("%.3f", percentile(resp, 0.95) / kMs)});
        }
        rows.print();
    }

    heading(opts, "Fig. 2c: tail latency vs load, normalized to the "
                  "95th-pct service time (1.0 = no queuing)");
    TablePrinter tails({"app", "20%", "30%", "40%", "50%", "60%", "70%",
                        "80%"},
                       opts.csv);
    const std::vector<double> tail_loads = {0.2, 0.3, 0.4, 0.5,
                                            0.6, 0.7, 0.8};
    std::vector<std::function<std::string()>> tail_jobs;
    for (AppId id : apps) {
        for (double load : tail_loads) {
            tail_jobs.push_back([&, id, load] {
                const AppProfile app = makeApp(id);
                const int n =
                    opts.numRequests(std::max(app.paperRequests, 4000));
                const Trace t = generateLoadTrace(app, load, n, nominal,
                                                  opts.seed + 2);
                FixedFrequencyPolicy fixed(nominal);
                const SimResult sim =
                    simulate(t, fixed, plat.dvfs, plat.power);
                std::vector<double> svc;
                for (const auto &c : sim.completed)
                    svc.push_back(c.serviceTime());
                const double norm = percentile(svc, 0.95);
                return fmt("%.2f", sim.tailLatency(0.95) / norm);
            });
        }
    }
    const std::vector<std::string> tail_cells =
        runner.runBatch(std::move(tail_jobs));
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        std::vector<std::string> row{makeApp(apps[ai]).name};
        for (std::size_t li = 0; li < tail_loads.size(); ++li)
            row.push_back(tail_cells[ai * tail_loads.size() + li]);
        tails.addRow(row);
    }
    tails.print();
    return 0;
}
