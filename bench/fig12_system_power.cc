/**
 * @file
 * Figure 12: full-system power savings of Rubik at 30% load.
 *
 * Core power savings are large (Fig. 6), but the server also burns
 * uncore, DRAM and "other" power that DVFS cannot touch, so full-system
 * savings are modest (~4-14% in the paper) — the motivation for
 * RubikColoc (Sec. 6).
 */

#include <functional>

#include "common.h"
#include "core/rubik_controller.h"
#include "policies/replay.h"
#include "runner/experiment_runner.h"
#include "sim/simulation.h"
#include "workloads/trace_gen.h"

using namespace rubik;
using namespace rubik::bench;

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    Platform plat;
    const double nominal = plat.dvfs.nominalFrequency();
    const int copies = plat.power.params().numCores;

    heading(opts, "Fig. 12: full-system power savings of Rubik at 30% "
                  "load (6 app copies per server)");
    TablePrinter table({"app", "core_savings", "system_savings",
                        "fixed_W", "rubik_W"},
                       opts.csv);

    ExperimentRunner runner(opts.jobs);
    std::vector<std::function<std::vector<std::string>()>> jobs;
    for (AppId id : allApps()) {
        jobs.push_back([&, id]() -> std::vector<std::string> {
            const AppProfile app = makeApp(id);
            const int n =
                opts.numRequests(std::max(app.paperRequests, 5000));

            const Trace t50 =
                generateLoadTrace(app, 0.5, n, nominal, opts.seed);
            const double bound =
                replayFixed(t50, nominal, plat.power).tailLatency(0.95);

            const Trace t =
                generateLoadTrace(app, 0.3, n, nominal, opts.seed + 1);

            FixedFrequencyPolicy fixed_policy(nominal);
            const SimResult fixed =
                simulate(t, fixed_policy, plat.dvfs, plat.power);

            RubikConfig rcfg;
            rcfg.latencyBound = bound;
            RubikController rubik(plat.dvfs, rcfg);
            const SimResult rr =
                simulate(t, rubik, plat.dvfs, plat.power);

            const double fixed_sys =
                systemEnergy(fixed, plat.power, copies).total() /
                fixed.simTime;
            const double rubik_sys =
                systemEnergy(rr, plat.power, copies).total() /
                rr.simTime;
            const double core_savings =
                1.0 - rr.coreActiveEnergy() / fixed.coreActiveEnergy();

            return {app.name, fmt("%.1f%%", core_savings * 100),
                    fmt("%.1f%%", (1.0 - rubik_sys / fixed_sys) * 100),
                    fmt("%.1f", fixed_sys), fmt("%.1f", rubik_sys)};
        });
    }
    for (auto &row : runner.runBatch(std::move(jobs)))
        table.addRow(std::move(row));
    table.print();
    return 0;
}
