/**
 * @file
 * Figure 10: responsiveness to load steps. For each app, load goes
 * 25% -> 50% -> 75% at t = 0/4/8 s. StaticOracle and AdrenalineOracle
 * are tuned for the initial 25% load (they adapt at multi-minute
 * timescales, so within the 12 s window they cannot re-tune); Rubik
 * adapts per arrival/completion.
 *
 * Paper's shape: the static schemes run unnecessarily fast at 25%
 * (wasting power, overly low tail) and much too slow past 50% (tail
 * explosion); Rubik tracks the bound through the first two phases and
 * degrades least at 75%.
 *
 * Sweep execution: each app's full pipeline (tuning + stepped-trace
 * replays + Rubik simulation) is one ExperimentRunner job; blocks are
 * emitted in submission order, so the output is byte-identical to the
 * old serial loop.
 */

#include "common.h"
#include "core/rubik_controller.h"
#include "policies/adrenaline.h"
#include "policies/replay.h"
#include "policies/static_oracle.h"
#include "runner/experiment_runner.h"
#include "sim/metrics.h"
#include "sim/simulation.h"
#include "util/units.h"
#include "workloads/trace_gen.h"

using namespace rubik;
using namespace rubik::bench;

namespace {

std::vector<CompletedRequest>
toCompleted(const Trace &t, const ReplayResult &r)
{
    std::vector<CompletedRequest> out;
    out.reserve(t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
        CompletedRequest c;
        c.arrivalTime = t[i].arrivalTime;
        c.startTime = t[i].arrivalTime;
        c.completionTime = t[i].arrivalTime + r.latencies[i];
        out.push_back(c);
    }
    return out;
}

/// One app's full result block: the rolling tail/power time series.
struct AppBlock
{
    std::string name;
    double bound = 0.0;
    std::vector<TimeSample> staticTail, adrTail, rubikTail;
    std::vector<TimeSample> staticPower, adrPower, rubikPower;
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    Platform plat;
    const double nominal = plat.dvfs.nominalFrequency();
    const double duration = 12.0;
    ExperimentRunner runner(opts.jobs);

    const std::vector<AppId> apps = allApps();
    std::vector<std::function<AppBlock()>> jobs;
    for (AppId id : apps) {
        jobs.push_back([&, id] {
            const AppProfile app = makeApp(id);
            const int n_tune = opts.numRequests(5000);

            // Bound from 50% load at nominal.
            const Trace t50 =
                generateLoadTrace(app, 0.5, n_tune, nominal, opts.seed);
            const double bound =
                replayFixed(t50, nominal, plat.power).tailLatency(0.95);

            // Static schemes tuned at the initial 25% load.
            const Trace t25 = generateLoadTrace(app, 0.25, n_tune, nominal,
                                                opts.seed + 1);
            const auto so =
                staticOracle(t25, bound, 0.95, plat.dvfs, plat.power);
            const auto adr = adrenalineOracle(t25, bound, plat.dvfs,
                                              plat.power, nominal);

            // The stepped trace everyone replays.
            const Trace step = generateSteppedTrace(
                app, {{0.0, 0.25}, {4.0, 0.5}, {8.0, 0.75}}, duration,
                nominal, opts.seed + 2);

            const ReplayResult so_r =
                replayFixed(step, so.frequency, plat.power);
            // Adrenaline applies its tuned (threshold, base, boost)
            // setting.
            std::vector<double> adr_freqs(step.size());
            for (std::size_t i = 0; i < step.size(); ++i) {
                adr_freqs[i] = step[i].serviceTime(nominal) > adr.threshold
                                   ? adr.boostFrequency
                                   : adr.baseFrequency;
            }
            const ReplayResult adr_r =
                replayFifo(step, adr_freqs, plat.power);

            RubikConfig rcfg;
            rcfg.latencyBound = bound;
            RubikController rubik(plat.dvfs, rcfg);
            const SimResult rubik_r =
                simulate(step, rubik, plat.dvfs, plat.power);

            const double win = 0.2, dt = 0.5;
            AppBlock block;
            block.name = app.name;
            block.bound = bound;
            block.staticTail = rollingTailLatency(toCompleted(step, so_r),
                                                  win, 0.95, dt);
            block.adrTail = rollingTailLatency(toCompleted(step, adr_r),
                                               win, 0.95, dt);
            block.rubikTail =
                rollingTailLatency(rubik_r.completed, win, 0.95, dt);
            block.rubikPower =
                rollingActivePower(rubik_r.completed, win, dt);

            // Static schemes' rolling power from per-request energies.
            auto replay_power = [&](const ReplayResult &r,
                                    const std::vector<double> &freqs) {
                std::vector<CompletedRequest> c = toCompleted(step, r);
                for (std::size_t i = 0; i < c.size(); ++i)
                    c[i].coreEnergy = requestEnergy(step[i], freqs[i],
                                                    plat.power);
                return rollingActivePower(c, win, dt);
            };
            block.staticPower = replay_power(
                so_r, std::vector<double>(step.size(), so.frequency));
            block.adrPower = replay_power(adr_r, adr_freqs);
            return block;
        });
    }
    const std::vector<AppBlock> blocks = runner.runBatch(std::move(jobs));

    for (const AppBlock &block : blocks) {
        heading(opts, "Fig. 10: " + block.name +
                          " load steps 25/50/75% (bound " +
                          fmt("%.3f", block.bound / kMs) + " ms)");
        TablePrinter table({"t_s", "load", "static_tail_ms", "adr_tail_ms",
                            "rubik_tail_ms", "static_W", "adr_W",
                            "rubik_W"},
                           opts.csv);

        for (std::size_t i = 0; i < block.rubikTail.size(); ++i) {
            const double t = block.rubikTail[i].time;
            const double load = t < 4.0 ? 0.25 : (t < 8.0 ? 0.5 : 0.75);
            auto at = [&](const std::vector<TimeSample> &v) {
                return i < v.size() ? v[i].value : 0.0;
            };
            table.addRow({fmt("%.1f", t), fmt("%.0f%%", load * 100),
                          fmt("%.3f", at(block.staticTail) / kMs),
                          fmt("%.3f", at(block.adrTail) / kMs),
                          fmt("%.3f", at(block.rubikTail) / kMs),
                          fmt("%.2f", at(block.staticPower)),
                          fmt("%.2f", at(block.adrPower)),
                          fmt("%.2f", at(block.rubikPower))});
        }
        table.print();
    }
    return 0;
}
