/**
 * @file
 * Figure 10: responsiveness to load steps. For each app, load goes
 * 25% -> 50% -> 75% at t = 0/4/8 s. StaticOracle and AdrenalineOracle
 * are tuned for the initial 25% load (they adapt at multi-minute
 * timescales, so within the 12 s window they cannot re-tune); Rubik
 * adapts per arrival/completion.
 *
 * Paper's shape: the static schemes run unnecessarily fast at 25%
 * (wasting power, overly low tail) and much too slow past 50% (tail
 * explosion); Rubik tracks the bound through the first two phases and
 * degrades least at 75%.
 */

#include "common.h"
#include "core/rubik_controller.h"
#include "policies/adrenaline.h"
#include "policies/replay.h"
#include "policies/static_oracle.h"
#include "sim/metrics.h"
#include "sim/simulation.h"
#include "util/units.h"
#include "workloads/trace_gen.h"

using namespace rubik;
using namespace rubik::bench;

namespace {

std::vector<CompletedRequest>
toCompleted(const Trace &t, const ReplayResult &r)
{
    std::vector<CompletedRequest> out;
    out.reserve(t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
        CompletedRequest c;
        c.arrivalTime = t[i].arrivalTime;
        c.startTime = t[i].arrivalTime;
        c.completionTime = t[i].arrivalTime + r.latencies[i];
        out.push_back(c);
    }
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    Platform plat;
    const double nominal = plat.dvfs.nominalFrequency();
    const double duration = 12.0;

    for (AppId id : allApps()) {
        const AppProfile app = makeApp(id);
        const int n_tune = opts.numRequests(5000);

        // Bound from 50% load at nominal.
        const Trace t50 =
            generateLoadTrace(app, 0.5, n_tune, nominal, opts.seed);
        const double bound =
            replayFixed(t50, nominal, plat.power).tailLatency(0.95);

        // Static schemes tuned at the initial 25% load.
        const Trace t25 =
            generateLoadTrace(app, 0.25, n_tune, nominal, opts.seed + 1);
        const auto so =
            staticOracle(t25, bound, 0.95, plat.dvfs, plat.power);
        const auto adr = adrenalineOracle(t25, bound, plat.dvfs,
                                          plat.power, nominal);

        // The stepped trace everyone replays.
        const Trace step = generateSteppedTrace(
            app, {{0.0, 0.25}, {4.0, 0.5}, {8.0, 0.75}}, duration, nominal,
            opts.seed + 2);

        const ReplayResult so_r =
            replayFixed(step, so.frequency, plat.power);
        // Adrenaline applies its tuned (threshold, base, boost) setting.
        std::vector<double> adr_freqs(step.size());
        for (std::size_t i = 0; i < step.size(); ++i) {
            adr_freqs[i] = step[i].serviceTime(nominal) > adr.threshold
                               ? adr.boostFrequency
                               : adr.baseFrequency;
        }
        const ReplayResult adr_r = replayFifo(step, adr_freqs, plat.power);

        RubikConfig rcfg;
        rcfg.latencyBound = bound;
        RubikController rubik(plat.dvfs, rcfg);
        const SimResult rubik_r =
            simulate(step, rubik, plat.dvfs, plat.power);

        heading(opts, "Fig. 10: " + app.name +
                          " load steps 25/50/75% (bound " +
                          fmt("%.3f", bound / kMs) + " ms)");
        TablePrinter table({"t_s", "load", "static_tail_ms", "adr_tail_ms",
                            "rubik_tail_ms", "static_W", "adr_W",
                            "rubik_W"},
                           opts.csv);

        const double win = 0.2, dt = 0.5;
        const auto so_t =
            rollingTailLatency(toCompleted(step, so_r), win, 0.95, dt);
        const auto adr_t =
            rollingTailLatency(toCompleted(step, adr_r), win, 0.95, dt);
        const auto ru_t =
            rollingTailLatency(rubik_r.completed, win, 0.95, dt);
        const auto ru_p = rollingActivePower(rubik_r.completed, win, dt);

        // Static schemes' rolling power from per-request energies.
        auto replay_power = [&](const ReplayResult &r,
                                const std::vector<double> &freqs) {
            std::vector<CompletedRequest> c = toCompleted(step, r);
            for (std::size_t i = 0; i < c.size(); ++i)
                c[i].coreEnergy = requestEnergy(step[i], freqs[i],
                                                plat.power);
            return rollingActivePower(c, win, dt);
        };
        const auto so_p = replay_power(
            so_r, std::vector<double>(step.size(), so.frequency));
        const auto adr_p = replay_power(adr_r, adr_freqs);

        for (std::size_t i = 0; i < ru_t.size(); ++i) {
            const double t = ru_t[i].time;
            const double load = t < 4.0 ? 0.25 : (t < 8.0 ? 0.5 : 0.75);
            auto at = [&](const std::vector<TimeSample> &v) {
                return i < v.size() ? v[i].value : 0.0;
            };
            table.addRow({fmt("%.1f", t), fmt("%.0f%%", load * 100),
                          fmt("%.3f", at(so_t) / kMs),
                          fmt("%.3f", at(adr_t) / kMs),
                          fmt("%.3f", at(ru_t) / kMs),
                          fmt("%.2f", at(so_p)),
                          fmt("%.2f", at(adr_p)),
                          fmt("%.2f", at(ru_p))});
        }
        table.print();
    }
    return 0;
}
