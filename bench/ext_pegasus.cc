/**
 * @file
 * Extension: a runnable Pegasus-style feedback-only controller.
 *
 * The paper compares against StaticOracle and argues it upper-bounds any
 * feedback controller's efficiency ("StaticOracle is identical to the
 * oracular iso-latency scheme that upper-bounds the power savings from
 * Pegasus", Sec. 5.2). This experiment demonstrates that claim directly:
 * Pegasus converges to (at best) StaticOracle's operating point in steady
 * state, saves less during its convergence, and reacts far more slowly to
 * load steps than Rubik.
 */

#include <functional>

#include "common.h"
#include "core/rubik_controller.h"
#include "policies/pegasus.h"
#include "policies/replay.h"
#include "policies/static_oracle.h"
#include "runner/experiment_runner.h"
#include "sim/metrics.h"
#include "sim/simulation.h"
#include "util/units.h"
#include "workloads/trace_gen.h"

using namespace rubik;
using namespace rubik::bench;

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    Platform plat;
    const double nominal = plat.dvfs.nominalFrequency();
    const AppProfile app = makeApp(AppId::Masstree);
    const int n = opts.numRequests(20000);

    const Trace t50 = generateLoadTrace(app, 0.5, n, nominal, opts.seed);
    const double bound =
        replayFixed(t50, nominal, plat.power).tailLatency(0.95);

    heading(opts, "Extension: Pegasus (feedback-only) vs StaticOracle vs "
                  "Rubik in steady state (core power savings %, "
                  "tail/bound)");
    TablePrinter table({"load", "Pegasus", "StaticOracle", "Rubik"},
                       opts.csv);
    ExperimentRunner runner(opts.jobs);
    std::vector<std::function<std::vector<std::string>()>> jobs;
    for (double load : {0.2, 0.3, 0.4, 0.5}) {
        jobs.push_back([&, load]() -> std::vector<std::string> {
            const Trace t = load == 0.5
                                ? t50
                                : generateLoadTrace(app, load, n,
                                                    nominal,
                                                    opts.seed + 1);
            const double fixed_energy =
                replayFixed(t, nominal, plat.power).coreActiveEnergy;

            PegasusConfig pcfg;
            pcfg.latencyBound = bound;
            PegasusPolicy pegasus(plat.dvfs, pcfg);
            const SimResult pr =
                simulate(t, pegasus, plat.dvfs, plat.power);

            const auto so =
                staticOracle(t, bound, 0.95, plat.dvfs, plat.power);

            RubikConfig rcfg;
            rcfg.latencyBound = bound;
            RubikController rubik(plat.dvfs, rcfg);
            const SimResult rr =
                simulate(t, rubik, plat.dvfs, plat.power);

            auto cell = [&](double energy, double tail) {
                return fmt("%.1f", (1.0 - energy / fixed_energy) * 100) +
                       " (" + fmt("%.2f", tail / bound) + ")";
            };
            return {fmt("%.0f%%", load * 100),
                    cell(pr.coreActiveEnergy(), pr.tailLatency(0.95)),
                    cell(so.replay.coreActiveEnergy,
                         so.replay.tailLatency(0.95)),
                    cell(rr.coreActiveEnergy(), rr.tailLatency(0.95))};
        });
    }
    for (auto &row : runner.runBatch(std::move(jobs)))
        table.addRow(std::move(row));
    table.print();

    heading(opts, "Responsiveness: 25% -> 60% load step at t=6s "
                  "(tail over rolling 200 ms)");
    const Trace step = generateSteppedTrace(
        app, {{0.0, 0.25}, {6.0, 0.6}}, 12.0, nominal, opts.seed + 2);

    // The two step-response sims are independent; overlap them.
    auto peg_future = runner.submit([&] {
        PegasusConfig pcfg;
        pcfg.latencyBound = bound;
        PegasusPolicy pegasus(plat.dvfs, pcfg);
        return simulate(step, pegasus, plat.dvfs, plat.power);
    });
    auto rubik_future = runner.submit([&] {
        RubikConfig rcfg;
        rcfg.latencyBound = bound;
        RubikController rubik(plat.dvfs, rcfg);
        return simulate(step, rubik, plat.dvfs, plat.power);
    });
    const SimResult pr = peg_future.get();
    const SimResult rr = rubik_future.get();

    const auto peg_tail = rollingTailLatency(pr.completed, 0.2, 0.95, 1.0);
    const auto ru_tail = rollingTailLatency(rr.completed, 0.2, 0.95, 1.0);
    TablePrinter series({"t_s", "load", "pegasus_tail_ms",
                         "rubik_tail_ms", "bound_ms"},
                        opts.csv);
    for (std::size_t i = 0; i < ru_tail.size(); ++i) {
        const double t = ru_tail[i].time;
        series.addRow({fmt("%.0f", t),
                       fmt("%.0f%%", (t < 6.0 ? 0.25 : 0.6) * 100),
                       fmt("%.3f", (i < peg_tail.size()
                                        ? peg_tail[i].value
                                        : 0.0) /
                                       kMs),
                       fmt("%.3f", ru_tail[i].value / kMs),
                       fmt("%.3f", bound / kMs)});
    }
    series.print();
    return 0;
}
