/**
 * @file
 * Figure 11: real-system evaluation. The paper's Haswell exhibits DVFS
 * transition latencies of up to 130 us (vs FIVR's advertised 0.5 us), and
 * the full 8 MB LLC makes the apps more compute-bound with more variable
 * service times. We reproduce the setup by (a) raising the transition
 * latency to 130 us and (b) shifting masstree/moses toward compute-bound,
 * higher-variance service models.
 *
 * Paper's shape: Rubik still always meets the bound; for masstree (240 us
 * median requests) the DVFS lag erodes Rubik's edge over StaticOracle as
 * load grows (identical at 50%); for moses (3.95 ms requests) Rubik keeps
 * a large margin (51% savings at 30%, 17% at 50%).
 */

#include <cstdio>

#include "common.h"
#include "core/rubik_controller.h"
#include "policies/replay.h"
#include "policies/static_oracle.h"
#include "sim/simulation.h"
#include "util/units.h"
#include "workloads/trace_gen.h"

using namespace rubik;
using namespace rubik::bench;

namespace {

/// Real-system variant: larger LLC -> more compute-bound, more variable.
AppProfile
realSystemVariant(AppId id)
{
    AppProfile app = makeApp(id);
    app.memFraction *= 0.3;
    if (id == AppId::Masstree) {
        app.serviceTime =
            std::make_shared<LognormalServiceTime>(0.26 * kMs, 0.25);
    } else {
        app.serviceTime =
            std::make_shared<LognormalServiceTime>(4.4 * kMs, 0.40);
    }
    return app;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    Platform plat(/*transition_latency=*/130e-6);
    const double nominal = plat.dvfs.nominalFrequency();

    heading(opts, "Fig. 11: real-system core power savings over fixed "
                  "2.4 GHz (130 us DVFS transitions)");
    TablePrinter table({"app", "load", "StaticOracle", "Rubik",
                        "rubik_tail/bound"},
                       opts.csv);

    for (AppId id : {AppId::Masstree, AppId::Moses}) {
        const AppProfile app = realSystemVariant(id);
        const int n = opts.numRequests(id == AppId::Masstree ? 9000 : 3000);

        const Trace t50 =
            generateLoadTrace(app, 0.5, n, nominal, opts.seed);
        const double bound =
            replayFixed(t50, nominal, plat.power).tailLatency(0.95);

        for (double load : {0.3, 0.4, 0.5}) {
            const Trace t =
                generateLoadTrace(app, load, n, nominal, opts.seed + 1);
            const double fixed_energy =
                replayFixed(t, nominal, plat.power).coreActiveEnergy;
            const auto so =
                staticOracle(t, bound, 0.95, plat.dvfs, plat.power);

            RubikConfig rcfg;
            rcfg.latencyBound = bound;
            RubikController rubik(plat.dvfs, rcfg);
            const SimResult rr = simulate(t, rubik, plat.dvfs, plat.power);

            table.addRow(
                {app.name, fmt("%.0f%%", load * 100),
                 fmt("%.1f%%",
                     (1.0 - so.replay.coreActiveEnergy / fixed_energy) *
                         100),
                 fmt("%.1f%%",
                     (1.0 - rr.coreActiveEnergy() / fixed_energy) * 100),
                 fmt("%.2f", rr.tailLatency(0.95) / bound)});
        }
    }
    table.print();
    std::printf("\n(median service: masstree-like %.0f us, moses-like "
                "%.1f ms; tail/bound <= 1 means the bound held)\n",
                realSystemVariant(AppId::Masstree).serviceTime->mean() /
                    kUs,
                realSystemVariant(AppId::Moses).serviceTime->mean() / kMs);
    return 0;
}
