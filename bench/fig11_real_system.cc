/**
 * @file
 * Figure 11: real-system evaluation. The paper's Haswell exhibits DVFS
 * transition latencies of up to 130 us (vs FIVR's advertised 0.5 us), and
 * the full 8 MB LLC makes the apps more compute-bound with more variable
 * service times. We reproduce the setup by (a) raising the transition
 * latency to 130 us and (b) shifting masstree/moses toward compute-bound,
 * higher-variance service models.
 *
 * Paper's shape: Rubik still always meets the bound; for masstree (240 us
 * median requests) the DVFS lag erodes Rubik's edge over StaticOracle as
 * load grows (identical at 50%); for moses (3.95 ms requests) Rubik keeps
 * a large margin (51% savings at 30%, 17% at 50%).
 */

#include <cstdio>
#include <functional>

#include "common.h"
#include "core/rubik_controller.h"
#include "policies/replay.h"
#include "policies/static_oracle.h"
#include "runner/experiment_runner.h"
#include "sim/simulation.h"
#include "util/units.h"
#include "workloads/trace_gen.h"

using namespace rubik;
using namespace rubik::bench;

namespace {

/// Real-system variant: larger LLC -> more compute-bound, more variable.
AppProfile
realSystemVariant(AppId id)
{
    AppProfile app = makeApp(id);
    app.memFraction *= 0.3;
    if (id == AppId::Masstree) {
        app.serviceTime =
            std::make_shared<LognormalServiceTime>(0.26 * kMs, 0.25);
    } else {
        app.serviceTime =
            std::make_shared<LognormalServiceTime>(4.4 * kMs, 0.40);
    }
    return app;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    Platform plat(/*transition_latency=*/130e-6);
    const double nominal = plat.dvfs.nominalFrequency();

    heading(opts, "Fig. 11: real-system core power savings over fixed "
                  "2.4 GHz (130 us DVFS transitions)");
    TablePrinter table({"app", "load", "StaticOracle", "Rubik",
                        "rubik_tail/bound"},
                       opts.csv);

    const std::vector<AppId> ids = {AppId::Masstree, AppId::Moses};
    const std::vector<double> loads = {0.3, 0.4, 0.5};
    ExperimentRunner runner(opts.jobs);

    // Phase 1: per-app latency bound from the 50%-load trace.
    struct AppContext
    {
        AppProfile app;
        int n = 0;
        double bound = 0.0;
    };
    std::vector<std::function<AppContext()>> bound_jobs;
    for (AppId id : ids) {
        bound_jobs.push_back([&, id] {
            AppContext ctx;
            ctx.app = realSystemVariant(id);
            ctx.n = opts.numRequests(id == AppId::Masstree ? 9000
                                                           : 3000);
            const Trace t50 = generateLoadTrace(ctx.app, 0.5, ctx.n,
                                                nominal, opts.seed);
            ctx.bound = replayFixed(t50, nominal, plat.power)
                            .tailLatency(0.95);
            return ctx;
        });
    }
    const std::vector<AppContext> ctxs =
        runner.runBatch(std::move(bound_jobs));

    // Phase 2: one job per (app, load) cell.
    std::vector<std::function<std::vector<std::string>()>> cell_jobs;
    for (std::size_t ai = 0; ai < ctxs.size(); ++ai) {
        for (double load : loads) {
            cell_jobs.push_back([&, ai,
                                 load]() -> std::vector<std::string> {
                const AppContext &ctx = ctxs[ai];
                const Trace t = generateLoadTrace(ctx.app, load, ctx.n,
                                                  nominal,
                                                  opts.seed + 1);
                const double fixed_energy =
                    replayFixed(t, nominal, plat.power)
                        .coreActiveEnergy;
                const auto so = staticOracle(t, ctx.bound, 0.95,
                                             plat.dvfs, plat.power);

                RubikConfig rcfg;
                rcfg.latencyBound = ctx.bound;
                RubikController rubik(plat.dvfs, rcfg);
                const SimResult rr =
                    simulate(t, rubik, plat.dvfs, plat.power);

                return {ctx.app.name, fmt("%.0f%%", load * 100),
                        fmt("%.1f%%", (1.0 - so.replay.coreActiveEnergy /
                                                 fixed_energy) *
                                          100),
                        fmt("%.1f%%", (1.0 - rr.coreActiveEnergy() /
                                                 fixed_energy) *
                                          100),
                        fmt("%.2f", rr.tailLatency(0.95) / ctx.bound)};
            });
        }
    }
    for (auto &row : runner.runBatch(std::move(cell_jobs)))
        table.addRow(std::move(row));
    table.print();
    std::printf("\n(median service: masstree-like %.0f us, moses-like "
                "%.1f ms; tail/bound <= 1 means the bound held)\n",
                realSystemVariant(AppId::Masstree).serviceTime->mean() /
                    kUs,
                realSystemVariant(AppId::Moses).serviceTime->mean() / kMs);
    return 0;
}
