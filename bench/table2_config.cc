/**
 * @file
 * Table 2: the simulated CMP configuration. Prints the DVFS interface and
 * the calibrated power-model parameters this reproduction uses in place
 * of zsim's microarchitectural config (see DESIGN.md for the mapping).
 */

#include <cstdio>

#include "common.h"
#include "util/units.h"

using namespace rubik;
using namespace rubik::bench;

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    Platform plat;
    const auto &p = plat.power.params();

    heading(opts, "Table 2: simulated CMP configuration");
    TablePrinter table({"component", "configuration"}, opts.csv);
    table.addRow({"cores", fmt("%.0f x request-level core model "
                               "(C cycles + M memory time)",
                               p.numCores)});
    table.addRow({"dvfs.range",
                  fmt("0.8-%.1f GHz, 200 MHz steps",
                      plat.dvfs.maxFrequency() / kGHz)});
    table.addRow({"dvfs.nominal",
                  fmt("%.1f GHz", plat.dvfs.nominalFrequency() / kGHz)});
    table.addRow({"dvfs.transition",
                  fmt("%.0f us (FIVR-like)",
                      plat.dvfs.transitionLatency() / kUs)});
    table.addRow({"dvfs.voltage",
                  fmt("0.65 V @ 0.8 GHz .. %.2f V @ 3.4 GHz",
                      plat.dvfs.voltage(plat.dvfs.maxFrequency()))});
    table.addRow({"power.core_nominal",
                  fmt("%.2f W active @ 2.4 GHz",
                      plat.power.coreActivePower(2.4 * kGHz))});
    table.addRow({"power.core_min",
                  fmt("%.2f W active @ 0.8 GHz",
                      plat.power.coreActivePower(0.8 * kGHz))});
    table.addRow({"power.c1", fmt("%.2f W", p.c1Power)});
    table.addRow({"power.c3",
                  fmt("%.2f W (L1/L2 flushed, Haswell C3)", p.c3Power)});
    table.addRow({"power.uncore",
                  fmt("%.1f W static + 0.5 W/active core",
                      p.uncoreStatic)});
    table.addRow({"power.dram",
                  fmt("%.1f W static + 3 W at peak bandwidth",
                      p.dramStatic)});
    table.addRow({"power.other",
                  fmt("%.1f W (PSU, disk, NIC, fans)", p.other)});
    table.addRow({"power.tdp", fmt("%.0f W", p.tdp)});
    table.print();
    return 0;
}
