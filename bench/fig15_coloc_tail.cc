/**
 * @file
 * Figure 15: tail latency under colocation at 60% LC load, across the
 * 100 (LC app x batch mix) colocated-server configurations, for
 * StaticColoc, RubikColoc, HW-T, and HW-TPW. Tail latencies are
 * normalized to each app's bound; mixes are sorted worst-first per
 * scheme.
 *
 * Paper's shape: HW-T and HW-TPW violate grossly (up to 8.2x / 3.2x);
 * StaticColoc violates on ~40% of mixes (up to 42%); RubikColoc holds
 * the bound on every mix.
 *
 * Memory partitioning decouples the six cores, so each (LC app, batch
 * app, frequency policy) core is simulated once and shared across mixes
 * (see coloc_sim.h).
 */

#include <algorithm>
#include <functional>
#include <map>

#include "common.h"
#include "coloc/batch_app.h"
#include "coloc/coloc_sim.h"
#include "coloc/hw_dvfs.h"
#include "core/rubik_controller.h"
#include "policies/replay.h"
#include "policies/static_oracle.h"
#include "runner/experiment_runner.h"
#include "stats/percentile.h"
#include "util/units.h"
#include "workloads/trace_gen.h"

using namespace rubik;
using namespace rubik::bench;

namespace {

enum class Scheme
{
    StaticColoc,
    RubikColoc,
    HwT,
    HwTpw,
};

const char *
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::StaticColoc: return "StaticColoc";
      case Scheme::RubikColoc:  return "RubikColoc";
      case Scheme::HwT:         return "HW-T";
      case Scheme::HwTpw:       return "HW-TPW";
    }
    return "?";
}

struct Runner
{
    Platform &plat;
    const Options &opts;
    std::vector<BatchApp> suite = specLikeSuite();
    double load = 0.6;

    // Per-app artifacts.
    std::map<int, Trace> traces;
    std::map<int, double> bounds;
    std::map<int, double> staticFreqs;

    // Cache: (app, batch, lc_freq_key) -> sorted LC latencies.
    std::map<std::tuple<int, std::size_t, long>,
             std::vector<double>>
        cache;

    Runner(Platform &p, const Options &o, ExperimentRunner &pool)
        : plat(p), opts(o)
    {
        const double nominal = plat.dvfs.nominalFrequency();
        const int n = opts.numRequests(3000);
        // Per-app bound, trace, and StaticColoc frequency, one job per
        // app.
        struct AppInit
        {
            int key = 0;
            Trace trace;
            double bound = 0.0;
            double staticFreq = 0.0;
        };
        std::vector<std::function<AppInit()>> jobs;
        for (AppId id : allApps()) {
            jobs.push_back([&, id] {
                AppInit init;
                const AppProfile app = makeApp(id);
                init.key = static_cast<int>(id);
                const Trace t50 = generateLoadTrace(
                    app, 0.5, n, nominal, opts.seed + init.key);
                init.bound = replayFixed(t50, nominal, plat.power)
                                 .tailLatency(0.95);
                init.trace = generateLoadTrace(app, load, n, nominal,
                                               opts.seed + 100 +
                                                   init.key);
                init.staticFreq =
                    staticOracle(init.trace, init.bound, 0.95,
                                 plat.dvfs, plat.power)
                        .frequency;
                return init;
            });
        }
        for (auto &init : pool.runBatch(std::move(jobs))) {
            bounds[init.key] = init.bound;
            staticFreqs[init.key] = init.staticFreq;
            traces[init.key] = std::move(init.trace);
        }
    }

    /// One core's identity: which (LC app, batch app, frequencies)
    /// simulateColoc run it needs.
    struct CoreSel
    {
        AppId id;
        std::size_t batch = 0;
        double lcFreq = 0.0;   ///< <= 0 means "Rubik".
        double batchFreq = 0.0;
    };

    using CacheKey = std::tuple<int, std::size_t, long>;

    static CacheKey
    cacheKey(const CoreSel &sel)
    {
        const long fkey =
            sel.lcFreq <= 0
                ? -1
                : static_cast<long>(sel.lcFreq / 1e6) * 10000 +
                      static_cast<long>(sel.batchFreq / 1e6) % 10000;
        return std::make_tuple(static_cast<int>(sel.id), sel.batch,
                               fkey);
    }

    /// The six per-core frequency choices of (app, mix) under a scheme
    /// — the enumeration both prewarm() and mixTail() share, so the
    /// parallel warm-up simulates exactly the cells the serial
    /// aggregation reads.
    std::vector<CoreSel>
    coreSelections(AppId id, const BatchMix &mix, Scheme scheme)
    {
        const int key = static_cast<int>(id);
        const AppProfile app = makeApp(id);

        // Per-core frequencies for the HW schemes.
        std::vector<double> hw_freqs;
        if (scheme == Scheme::HwT) {
            const CoreWorkload lc = lcWorkload(
                app.memFraction, plat.dvfs.nominalFrequency());
            std::vector<CoreWorkload> cores;
            for (std::size_t b : mix)
                cores.push_back(blendWorkload(lc, suite[b], load));
            hw_freqs =
                hwThroughputAllocation(cores, plat.dvfs, plat.power);
        }

        std::vector<CoreSel> sels;
        for (std::size_t k = 0; k < mix.size(); ++k) {
            const std::size_t b = mix[k];
            CoreSel sel;
            sel.id = id;
            sel.batch = b;
            switch (scheme) {
              case Scheme::StaticColoc:
                sel.lcFreq = staticFreqs[key];
                sel.batchFreq =
                    suite[b].tpwOptimalFrequency(plat.dvfs, plat.power);
                break;
              case Scheme::RubikColoc:
                sel.lcFreq = 0.0; // Rubik
                sel.batchFreq =
                    suite[b].tpwOptimalFrequency(plat.dvfs, plat.power);
                break;
              case Scheme::HwT:
                sel.lcFreq = hw_freqs[k];
                sel.batchFreq = hw_freqs[k];
                break;
              case Scheme::HwTpw:
                sel.lcFreq = tpwOptimalFrequency(
                    lcWorkload(app.memFraction,
                               plat.dvfs.nominalFrequency()),
                    plat.dvfs, plat.power);
                sel.batchFreq =
                    suite[b].tpwOptimalFrequency(plat.dvfs, plat.power);
                break;
            }
            sels.push_back(sel);
        }
        return sels;
    }

    /// Run one core simulation (the cache fill).
    std::vector<double>
    simulateCore(const CoreSel &sel)
    {
        const int key = static_cast<int>(sel.id);
        ColocConfig cfg;
        cfg.batchFrequency = sel.batchFreq;
        cfg.seed = opts.seed + 31 * sel.batch + key;

        ColocCoreResult r = [&] {
            if (sel.lcFreq <= 0) {
                RubikConfig rcfg;
                rcfg.latencyBound = bounds[key];
                RubikController rubik(plat.dvfs, rcfg);
                return simulateColoc(traces[key], rubik,
                                     suite[sel.batch], plat.dvfs,
                                     plat.power, cfg);
            }
            FixedFrequencyPolicy fixed(sel.lcFreq);
            return simulateColoc(traces[key], fixed, suite[sel.batch],
                                 plat.dvfs, plat.power, cfg);
        }();

        std::vector<double> lat = r.lc.latencies();
        std::sort(lat.begin(), lat.end());
        return lat;
    }

    /**
     * Simulate every distinct core the (scheme x app x mix) grid
     * needs, in parallel, before the serial aggregation reads the
     * cache. Distinct cores are collected in first-use order, so the
     * fill is deterministic.
     */
    void
    prewarm(const std::vector<Scheme> &schemes,
            const std::vector<AppId> &apps,
            const std::vector<BatchMix> &mixes, ExperimentRunner &pool)
    {
        std::vector<CoreSel> todo;
        for (Scheme scheme : schemes) {
            for (AppId id : apps) {
                for (const auto &mix : mixes) {
                    for (const CoreSel &sel :
                         coreSelections(id, mix, scheme)) {
                        const CacheKey ck = cacheKey(sel);
                        if (!cache.count(ck)) {
                            cache.emplace(ck, std::vector<double>{});
                            todo.push_back(sel);
                        }
                    }
                }
            }
        }
        std::vector<std::function<std::vector<double>()>> jobs;
        for (const CoreSel &sel : todo)
            jobs.push_back([this, sel] { return simulateCore(sel); });
        std::vector<std::vector<double>> results =
            pool.runBatch(std::move(jobs));
        for (std::size_t i = 0; i < todo.size(); ++i)
            cache[cacheKey(todo[i])] = std::move(results[i]);
    }

    /// LC latencies for one core (prewarmed, or simulated on miss).
    const std::vector<double> &
    core(const CoreSel &sel)
    {
        const CacheKey ck = cacheKey(sel);
        auto it = cache.find(ck);
        if (it != cache.end() && !it->second.empty())
            return it->second;
        return cache[ck] = simulateCore(sel);
    }

    /// Normalized tail for (app, mix) under a scheme.
    double
    mixTail(AppId id, const BatchMix &mix, Scheme scheme)
    {
        const int key = static_cast<int>(id);
        std::vector<double> all;
        for (const CoreSel &sel : coreSelections(id, mix, scheme)) {
            const auto &lat = core(sel);
            all.insert(all.end(), lat.begin(), lat.end());
        }
        return percentile(std::move(all), 0.95) / bounds[key];
    }
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    Platform plat;
    ExperimentRunner pool(opts.jobs);
    Runner runner(plat, opts, pool);
    const auto mixes = makeMixes(runner.suite.size(), 20, 6, opts.seed);

    heading(opts, "Fig. 15: normalized tail latency across 100 colocated "
                  "mixes at 60% LC load (sorted worst-first; > 1.0 "
                  "violates the bound)");

    const std::vector<Scheme> schemes = {Scheme::StaticColoc,
                                         Scheme::RubikColoc, Scheme::HwT,
                                         Scheme::HwTpw};
    // Simulate the distinct (LC app, batch app, frequency) cores in
    // parallel; the aggregation below then only reads the cache.
    runner.prewarm(schemes, allApps(), mixes, pool);

    std::map<Scheme, std::vector<double>> results;
    for (Scheme scheme : schemes) {
        for (AppId id : allApps()) {
            for (const auto &mix : mixes)
                results[scheme].push_back(runner.mixTail(id, mix, scheme));
        }
        std::sort(results[scheme].rbegin(), results[scheme].rend());
    }

    TablePrinter table({"scheme", "worst", "p90", "p75", "median", "best",
                        "violations/100"},
                       opts.csv);
    for (const auto &[scheme, tails] : results) {
        int violations = 0;
        for (double v : tails)
            violations += v > 1.0;
        table.addRow(
            {schemeName(scheme), fmt("%.2f", tails.front()),
             fmt("%.2f", tails[tails.size() / 10]),
             fmt("%.2f", tails[tails.size() / 4]),
             fmt("%.2f", tails[tails.size() / 2]),
             fmt("%.2f", tails.back()),
             fmt("%.0f", static_cast<double>(violations))});
    }
    table.print();
    return 0;
}
