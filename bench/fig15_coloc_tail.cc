/**
 * @file
 * Figure 15: tail latency under colocation at 60% LC load, across the
 * 100 (LC app x batch mix) colocated-server configurations, for
 * StaticColoc, RubikColoc, HW-T, and HW-TPW. Tail latencies are
 * normalized to each app's bound; mixes are sorted worst-first per
 * scheme.
 *
 * Paper's shape: HW-T and HW-TPW violate grossly (up to 8.2x / 3.2x);
 * StaticColoc violates on ~40% of mixes (up to 42%); RubikColoc holds
 * the bound on every mix.
 *
 * Memory partitioning decouples the six cores, so each (LC app, batch
 * app, frequency policy) core is simulated once and shared across mixes
 * (see coloc_sim.h).
 */

#include <algorithm>
#include <map>

#include "common.h"
#include "coloc/batch_app.h"
#include "coloc/coloc_sim.h"
#include "coloc/hw_dvfs.h"
#include "core/rubik_controller.h"
#include "policies/replay.h"
#include "policies/static_oracle.h"
#include "stats/percentile.h"
#include "util/units.h"
#include "workloads/trace_gen.h"

using namespace rubik;
using namespace rubik::bench;

namespace {

enum class Scheme
{
    StaticColoc,
    RubikColoc,
    HwT,
    HwTpw,
};

const char *
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::StaticColoc: return "StaticColoc";
      case Scheme::RubikColoc:  return "RubikColoc";
      case Scheme::HwT:         return "HW-T";
      case Scheme::HwTpw:       return "HW-TPW";
    }
    return "?";
}

struct Runner
{
    Platform &plat;
    const Options &opts;
    std::vector<BatchApp> suite = specLikeSuite();
    double load = 0.6;

    // Per-app artifacts.
    std::map<int, Trace> traces;
    std::map<int, double> bounds;
    std::map<int, double> staticFreqs;

    // Cache: (app, batch, lc_freq_key) -> sorted LC latencies.
    std::map<std::tuple<int, std::size_t, long>,
             std::vector<double>>
        cache;

    explicit Runner(Platform &p, const Options &o) : plat(p), opts(o)
    {
        const double nominal = plat.dvfs.nominalFrequency();
        const int n = opts.numRequests(3000);
        for (AppId id : allApps()) {
            const AppProfile app = makeApp(id);
            const int key = static_cast<int>(id);
            const Trace t50 =
                generateLoadTrace(app, 0.5, n, nominal, opts.seed + key);
            bounds[key] =
                replayFixed(t50, nominal, plat.power).tailLatency(0.95);
            traces[key] = generateLoadTrace(app, load, n, nominal,
                                            opts.seed + 100 + key);
            staticFreqs[key] = staticOracle(traces[key], bounds[key], 0.95,
                                            plat.dvfs, plat.power)
                                   .frequency;
        }
    }

    /// LC latencies for one core. lc_freq <= 0 means "Rubik".
    const std::vector<double> &
    core(AppId id, std::size_t batch_idx, double lc_freq,
         double batch_freq)
    {
        const int key = static_cast<int>(id);
        const long fkey =
            lc_freq <= 0
                ? -1
                : static_cast<long>(lc_freq / 1e6) * 10000 +
                      static_cast<long>(batch_freq / 1e6) % 10000;
        const auto ck = std::make_tuple(key, batch_idx, fkey);
        auto it = cache.find(ck);
        if (it != cache.end())
            return it->second;

        ColocConfig cfg;
        cfg.batchFrequency = batch_freq;
        cfg.seed = opts.seed + 31 * batch_idx + key;

        ColocCoreResult r = [&] {
            if (lc_freq <= 0) {
                RubikConfig rcfg;
                rcfg.latencyBound = bounds[key];
                RubikController rubik(plat.dvfs, rcfg);
                return simulateColoc(traces[key], rubik, suite[batch_idx],
                                     plat.dvfs, plat.power, cfg);
            }
            FixedFrequencyPolicy fixed(lc_freq);
            return simulateColoc(traces[key], fixed, suite[batch_idx],
                                 plat.dvfs, plat.power, cfg);
        }();

        std::vector<double> lat = r.lc.latencies();
        std::sort(lat.begin(), lat.end());
        return cache.emplace(ck, std::move(lat)).first->second;
    }

    /// Normalized tail for (app, mix) under a scheme.
    double
    mixTail(AppId id, const BatchMix &mix, Scheme scheme)
    {
        const int key = static_cast<int>(id);
        const AppProfile app = makeApp(id);
        std::vector<double> all;

        // Per-core frequencies for the HW schemes.
        std::vector<double> hw_freqs;
        if (scheme == Scheme::HwT) {
            const CoreWorkload lc = lcWorkload(
                app.memFraction, plat.dvfs.nominalFrequency());
            std::vector<CoreWorkload> cores;
            for (std::size_t b : mix)
                cores.push_back(blendWorkload(lc, suite[b], load));
            hw_freqs =
                hwThroughputAllocation(cores, plat.dvfs, plat.power);
        }

        for (std::size_t k = 0; k < mix.size(); ++k) {
            const std::size_t b = mix[k];
            double lc_freq = 0.0, batch_freq = 0.0;
            switch (scheme) {
              case Scheme::StaticColoc:
                lc_freq = staticFreqs[key];
                batch_freq =
                    suite[b].tpwOptimalFrequency(plat.dvfs, plat.power);
                break;
              case Scheme::RubikColoc:
                lc_freq = 0.0; // Rubik
                batch_freq =
                    suite[b].tpwOptimalFrequency(plat.dvfs, plat.power);
                break;
              case Scheme::HwT:
                lc_freq = hw_freqs[k];
                batch_freq = hw_freqs[k];
                break;
              case Scheme::HwTpw:
                lc_freq = tpwOptimalFrequency(
                    lcWorkload(app.memFraction,
                               plat.dvfs.nominalFrequency()),
                    plat.dvfs, plat.power);
                batch_freq =
                    suite[b].tpwOptimalFrequency(plat.dvfs, plat.power);
                break;
            }
            const auto &lat = core(id, b, lc_freq, batch_freq);
            all.insert(all.end(), lat.begin(), lat.end());
        }
        return percentile(std::move(all), 0.95) / bounds[key];
    }
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    Platform plat;
    Runner runner(plat, opts);
    const auto mixes = makeMixes(runner.suite.size(), 20, 6, opts.seed);

    heading(opts, "Fig. 15: normalized tail latency across 100 colocated "
                  "mixes at 60% LC load (sorted worst-first; > 1.0 "
                  "violates the bound)");

    std::map<Scheme, std::vector<double>> results;
    for (Scheme scheme : {Scheme::StaticColoc, Scheme::RubikColoc,
                          Scheme::HwT, Scheme::HwTpw}) {
        for (AppId id : allApps()) {
            for (const auto &mix : mixes)
                results[scheme].push_back(runner.mixTail(id, mix, scheme));
        }
        std::sort(results[scheme].rbegin(), results[scheme].rend());
    }

    TablePrinter table({"scheme", "worst", "p90", "p75", "median", "best",
                        "violations/100"},
                       opts.csv);
    for (const auto &[scheme, tails] : results) {
        int violations = 0;
        for (double v : tails)
            violations += v > 1.0;
        table.addRow(
            {schemeName(scheme), fmt("%.2f", tails.front()),
             fmt("%.2f", tails[tails.size() / 10]),
             fmt("%.2f", tails[tails.size() / 4]),
             fmt("%.2f", tails[tails.size() / 2]),
             fmt("%.2f", tails.back()),
             fmt("%.0f", static_cast<double>(violations))});
    }
    table.print();
    return 0;
}
